"""Hardened-detector behaviour under sensor faults.

The contract under test: ``FallDetector.push`` never raises on bad data,
never emits a non-finite probability, walks the documented
healthy/degraded/fault state machine, and the magnitude fallback keeps
the airbag guarded whenever the CNN path is unavailable.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.detector import (
    DEGRADED,
    FAULT,
    HEALTH_STATES,
    HEALTHY,
    AirbagController,
    DetectorConfig,
    FallDetector,
    MagnitudeFallback,
)
from repro.datasets.subjects import make_subjects
from repro.datasets.synthesis.generator import synthesize_recording
from repro.datasets.tasks import TASKS, fall_ids
from repro.faults import builtin_scenarios


class _ConstantModel:
    def __init__(self, probability=0.1):
        self.probability = probability

    def predict(self, x):
        return np.full((len(x), 1), self.probability)


class _SleepyModel(_ConstantModel):
    """Blows the deadline on every inference."""

    def __init__(self, sleep_s=0.002):
        super().__init__(0.1)
        self.sleep_s = sleep_s

    def predict(self, x):
        time.sleep(self.sleep_s)
        return super().predict(x)


class _RaisingModel:
    def predict(self, x):
        raise RuntimeError("firmware bug")


class _NanModel:
    def predict(self, x):
        return np.full((len(x), 1), np.nan)


def _fall_recording(task_id=30, seed=4):
    subject = make_subjects("HD", 1, seed=1)[0]
    return synthesize_recording(TASKS[task_id], subject, base_seed=seed)


GRAVITY = np.array([0.0, 0.0, 1.0])


class TestNeverRaisesUnderFaults:
    @pytest.mark.parametrize("name", sorted(builtin_scenarios()))
    def test_every_builtin_scenario_streams_clean(self, name):
        rec = _fall_recording()
        scenario = builtin_scenarios(seed=7)[name]
        t, accel, gyro = scenario.apply(rec)
        detector = FallDetector(_ConstantModel(0.6), DetectorConfig())
        hits = detector.run(accel, gyro, t=t)   # must not raise
        assert all(np.isfinite(h.probability) for h in hits)
        assert detector.health in HEALTH_STATES
        report = detector.health_report()
        assert set(report["states_seen"]) <= set(HEALTH_STATES)
        # The ring buffer never absorbed a non-finite value.
        assert np.isfinite(detector._buffer).all()

    def test_scenarios_are_actually_detected_as_anomalies(self):
        rec = _fall_recording()
        scenarios = builtin_scenarios(seed=7)
        expectations = {    # scenario -> counter that must move
            "dropout": "gap_filled_samples",
            "burst_gap": "stream_resets",
            "nan_burst": "repaired_samples",
            "clock_jitter": "clock_anomalies",
        }
        for name, counter in expectations.items():
            detector = FallDetector(_ConstantModel(), DetectorConfig())
            t, accel, gyro = scenarios[name].apply(rec)
            detector.run(accel, gyro, t=t)
            assert detector.health_report()[counter] > 0, name

    def test_gyro_dead_forces_fault_state(self):
        rec = _fall_recording()
        t, accel, gyro = builtin_scenarios(seed=7)["gyro_dead"].apply(rec)
        detector = FallDetector(_ConstantModel(), DetectorConfig())
        detector.run(accel, gyro, t=t)
        assert detector.gyro_dead
        assert detector.health == FAULT
        assert not detector.accel_dead


class TestValidationAndRepair:
    def test_nan_sample_is_repaired_and_degrades_health(self):
        detector = FallDetector(_ConstantModel(), DetectorConfig())
        for _ in range(5):
            detector.push(GRAVITY, np.zeros(3))
        assert detector.health == HEALTHY
        detector.push(np.array([np.nan, 0.0, 1.0]), np.zeros(3))
        assert detector.repaired_samples == 1
        assert detector.health == DEGRADED
        assert np.isfinite(detector._buffer).all()

    def test_health_recovers_after_clean_streak(self):
        cfg = DetectorConfig(recovery_samples=20)
        detector = FallDetector(_ConstantModel(), cfg)
        detector.push(np.array([np.inf, 0.0, 1.0]), np.zeros(3))
        assert detector.health == DEGRADED
        for _ in range(cfg.recovery_samples + 1):
            detector.push(GRAVITY, np.zeros(3))
        assert detector.health == HEALTHY
        transitions = detector.health_transitions
        assert [(f, to) for _, f, to in transitions] == [
            (HEALTHY, DEGRADED), (DEGRADED, HEALTHY)
        ]

    def test_saturated_readings_are_clamped(self):
        cfg = DetectorConfig(accel_range_g=4.0, gyro_range_dps=500.0)
        detector = FallDetector(_ConstantModel(), cfg)
        detector.push(np.array([100.0, 0.0, 1.0]), np.array([0.0, 9000.0, 0.0]))
        assert detector.saturated_samples == 1
        assert np.abs(detector._last_raw[:3]).max() <= 4.0
        assert np.abs(detector._last_raw[3:]).max() <= 500.0

    def test_first_sample_nan_bootstraps_to_gravity(self):
        detector = FallDetector(_ConstantModel(), DetectorConfig())
        detector.push(np.full(3, np.nan), np.full(3, np.nan))
        np.testing.assert_allclose(detector._last_raw[:3], GRAVITY)
        np.testing.assert_allclose(detector._last_raw[3:], np.zeros(3))


class TestTimestampHandling:
    def _push_range(self, detector, times, rng):
        for t in times:
            accel = GRAVITY + rng.normal(0, 1e-4, 3)
            detector.push(accel, rng.normal(0, 1e-3, 3), t=float(t))

    def test_short_gap_is_interpolated(self):
        detector = FallDetector(_ConstantModel(), DetectorConfig())
        rng = np.random.default_rng(0)
        self._push_range(detector, np.arange(50) / 100.0, rng)
        # 3 samples missing (t jumps 0.49 -> 0.53): within max_gap_ms=200.
        self._push_range(detector, [0.53], rng)
        assert detector.gap_filled_samples == 3
        assert detector.stream_resets == 0
        assert detector.samples_seen == 54
        assert detector.health == DEGRADED

    def test_long_gap_resets_stream_state(self):
        cfg = DetectorConfig(window_ms=200)
        detector = FallDetector(_ConstantModel(), cfg)
        rng = np.random.default_rng(1)
        self._push_range(detector, np.arange(30) / 100.0, rng)
        assert detector._filled == cfg.window_samples
        self._push_range(detector, [5.0], rng)   # 4.7 s outage
        assert detector.stream_resets == 1
        assert detector.gap_filled_samples == 0
        assert detector._filled == 1              # window warming up again

    def test_backwards_timestamp_counts_clock_anomaly(self):
        detector = FallDetector(_ConstantModel(), DetectorConfig())
        rng = np.random.default_rng(2)
        self._push_range(detector, [0.00, 0.01, 0.005], rng)
        assert detector.clock_anomalies == 1
        assert detector.samples_seen == 3

    def test_missing_timestamp_mid_stream_keeps_gap_checks_armed(self):
        """A None t after timestamped samples must not null ``_last_t``.

        Regression: ``_push`` used to store ``self._last_t = t``
        unconditionally, so one untimestamped sample silently disarmed
        gap/backwards detection for the rest of the stream.  Now the
        nominal clock keeps advancing (counted as a clock anomaly) and a
        later long gap still resets the stream.
        """
        detector = FallDetector(_ConstantModel(), DetectorConfig())
        rng = np.random.default_rng(3)
        self._push_range(detector, np.arange(30) / 100.0, rng)
        detector.push(GRAVITY + rng.normal(0, 1e-4, 3),
                      rng.normal(0, 1e-3, 3), t=None)
        assert detector.clock_anomalies == 1
        assert detector._last_t == pytest.approx(0.30)  # advanced by dt_nom
        # Gap machinery is still armed: a 5 s jump resets the stream.
        self._push_range(detector, [5.3], rng)
        assert detector.stream_resets == 1


class TestCnnSheddingAndFallback:
    def test_deadline_streak_sheds_cnn_to_fault(self):
        cfg = DetectorConfig(
            window_ms=200, deadline_ms=0.001,
            degraded_after_violations=1, shed_after_violations=3,
            shed_retry_hops=2,
        )
        detector = FallDetector(_SleepyModel(), cfg)
        for _ in range(cfg.window_samples + 3 * cfg.hop_samples):
            detector.push(GRAVITY, np.zeros(3))
        assert detector.deadline_violations >= 3
        assert detector.health_report()["cnn_shed"]
        assert detector.health == FAULT

    def test_shed_cnn_is_retried_after_backoff(self):
        cfg = DetectorConfig(
            window_ms=200, deadline_ms=0.001,
            degraded_after_violations=1, shed_after_violations=1,
            shed_retry_hops=2,
        )
        detector = FallDetector(_SleepyModel(), cfg)
        shed_seen = recovered_probe = False
        for _ in range(cfg.window_samples + 12 * cfg.hop_samples):
            detector.push(GRAVITY, np.zeros(3))
            if detector.health_report()["cnn_shed"]:
                shed_seen = True
            elif shed_seen:
                recovered_probe = True
        assert shed_seen and recovered_probe

    def test_model_exception_sheds_and_never_escapes(self):
        detector = FallDetector(_RaisingModel(), DetectorConfig(window_ms=200))
        for _ in range(60):
            detector.push(GRAVITY, np.zeros(3))   # must not raise
        assert detector.inference_errors >= 1
        assert detector.health == FAULT

    def test_nan_probability_sheds_instead_of_emitting(self):
        detector = FallDetector(_NanModel(), DetectorConfig(window_ms=200))
        hits = [detector.push(GRAVITY, np.zeros(3)) for _ in range(60)]
        hits = [h for h in hits if h]
        assert all(np.isfinite(h.probability) for h in hits)
        assert detector.inference_errors >= 1

    def test_fallback_detection_carries_source(self):
        rec = _fall_recording()
        detector = FallDetector(None, DetectorConfig())
        assert detector.health == FAULT    # no CNN: primary path unusable
        hits = detector.run(rec.accel, rec.gyro)
        assert hits
        assert all(h.source == "fallback" for h in hits)
        assert detector.fallback_detections == len(hits)

    def test_cnn_detection_carries_source(self):
        detector = FallDetector(_ConstantModel(0.9),
                                DetectorConfig(window_ms=200))
        hits = [detector.push(GRAVITY, np.zeros(3)) for _ in range(30)]
        hits = [h for h in hits if h]
        assert hits and all(h.source == "cnn" for h in hits)

    def test_fallback_shadows_quietly_while_cnn_healthy(self):
        rec = _fall_recording()
        detector = FallDetector(_ConstantModel(0.0), DetectorConfig())
        hits = detector.run(rec.accel, rec.gyro)
        # CNN is available and says "no fall"; the fallback must not
        # second-guess it (only the pre-window warm-up may emit).
        cfg = detector.config
        assert all(h.sample_index < cfg.window_samples for h in hits)


class TestFallbackSensitivity:
    def test_fallback_only_detector_catches_most_synthetic_falls(self):
        """Acceptance: >= 80 % of synthetic falls with the CNN disabled."""
        subject = make_subjects("FB", 1, seed=5)[0]
        detector = FallDetector(None, DetectorConfig())
        detected = 0
        falls = fall_ids()
        for tid in falls:
            rec = synthesize_recording(TASKS[tid], subject, base_seed=9)
            detector.reset()
            hits = detector.run(rec.accel, rec.gyro)
            lo = rec.fall_onset / rec.fs - 0.2
            hi = rec.impact / rec.fs - 0.150
            detected += any(lo <= h.time_s <= hi for h in hits)
        assert detected / len(falls) >= 0.80

    def test_magnitude_fallback_ignores_quiet_standing(self):
        fallback = MagnitudeFallback()
        rng = np.random.default_rng(3)
        fired = [fallback.push(GRAVITY + rng.normal(0, 0.01, 3))
                 for _ in range(500)]
        assert not any(fired)


class TestAirbagFailSafe:
    class _ExplodingDetector:
        """Deliberately violates FallDetector's never-raise contract."""

        health = FAULT

        def push(self, accel, gyro, t=None):
            raise RuntimeError("detector crashed")

    def test_detector_exception_is_contained(self):
        controller = AirbagController(self._ExplodingDetector())
        for _ in range(10):
            assert controller.push(GRAVITY, np.zeros(3)) is None
        assert controller.detector_errors == 10
        assert controller.state == "armed"

    def test_fallback_trigger_latches_like_cnn(self):
        rec = _fall_recording()
        controller = AirbagController(FallDetector(None, DetectorConfig()))
        for i in range(rec.n_samples):
            controller.push(rec.accel[i], rec.gyro[i])
        assert controller.state == "triggered"
        assert controller.trigger.source == "fallback"
        assert controller.detector_health == FAULT


class TestMetricNamespacing:
    """Regression: two live detectors used to share one global metric
    namespace, so instance B's faults inflated instance A's counters."""

    def test_two_detectors_report_independent_counters(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cfg = DetectorConfig(window_ms=200.0, overlap=0.5)
        a = FallDetector(_ConstantModel(), cfg, registry=registry,
                         metric_prefix="detector/a")
        b = FallDetector(_ConstantModel(), cfg, registry=registry,
                         metric_prefix="detector/b")
        rng = np.random.default_rng(0)
        for i in range(30):
            # jitter so a's perfectly healthy stream never looks stuck
            accel = np.array([0.0, 0.0, 1.0]) + rng.normal(0, 0.01, 3)
            gyro = rng.normal(0, 1.0, 3)
            a.push(accel, gyro, i / 100.0)
            # b's accelerometer is broken: every sample needs repair.
            b.push(np.full(3, np.nan), gyro, i / 100.0)
        assert a.health == HEALTHY
        assert b.health != HEALTHY
        assert registry.counter("detector/b/repaired_samples").value == 30
        assert registry.counter("detector/a/repaired_samples").value == 0
        assert registry.gauge("detector/a/health").value == 0.0
        assert registry.gauge("detector/b/health").value > 0.0
        # Instance counters mirror the registry, per instance.
        assert a.repaired_samples == 0
        assert b.repaired_samples == 30

    def test_default_prefix_preserves_historical_names(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        detector = FallDetector(_ConstantModel(),
                                DetectorConfig(window_ms=200.0),
                                registry=registry)
        detector.push(np.full(3, np.nan), np.zeros(3), 0.0)
        # Pre-namespacing dashboards watched detector/<counter>; the
        # default prefix keeps those names working.
        assert registry.counter("detector/repaired_samples").value == 1
        assert registry.gauge("detector/health").value >= 0.0
