"""MAC-count analysis."""

from __future__ import annotations

import pytest

from repro import nn
from repro.core.architecture import build_lightweight_cnn
from repro.core.baselines import build_cnn_bigru, build_lstm
from repro.nn import estimate_macs, macs_breakdown


class TestMacsEstimates:
    def test_dense_macs_manual(self):
        inp = nn.Input((8,))
        out = nn.layers.Dense(4, seed=0)(inp)
        model = nn.Model(inp, out)
        assert estimate_macs(model) == 8 * 4

    def test_conv1d_macs_manual(self):
        inp = nn.Input((10, 3))
        out = nn.layers.Conv1D(4, 3, seed=0)(inp)
        model = nn.Model(inp, out)
        # out_len 8, kernel 3x3 channels -> 4 filters.
        assert estimate_macs(model) == 8 * 3 * 3 * 4

    def test_lstm_macs_manual(self):
        inp = nn.Input((5, 3))
        out = nn.layers.LSTM(4, seed=0)(inp)
        model = nn.Model(inp, out)
        assert estimate_macs(model) == 5 * 4 * (3 * 4 + 4 * 4)

    def test_breakdown_covers_all_layers(self):
        model = build_lightweight_cnn(40, seed=0)
        breakdown = macs_breakdown(model)
        assert set(breakdown) == {layer.name for layer in model.layers}
        assert breakdown["dense_1"] == 864 * 64

    def test_recurrent_models_cost_more_per_param(self):
        """The paper's deployability argument in one assertion: the CNN has
        many parameters but few MACs; recurrent models invert that."""
        cnn = build_lightweight_cnn(40, seed=0)
        lstm = build_lstm(40, seed=0)
        bigru = build_cnn_bigru(40, seed=0)
        cnn_ratio = estimate_macs(cnn) / cnn.count_params()
        lstm_ratio = estimate_macs(lstm) / lstm.count_params()
        bigru_ratio = estimate_macs(bigru) / bigru.count_params()
        assert lstm_ratio > 3 * cnn_ratio
        assert bigru_ratio > 3 * cnn_ratio

    def test_cnn_macs_match_quantized_counter(self):
        """Float-graph MACs must agree with the int8 executor's count."""
        import numpy as np

        from repro.quant import QuantizedModel

        model = build_lightweight_cnn(40, seed=0)
        model.compile("adam", "bce")
        x = np.zeros((8, 40, 9), dtype=np.float32)
        qm = QuantizedModel.convert(model, x)
        assert estimate_macs(model) == qm.total_macs
