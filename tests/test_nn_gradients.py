"""Finite-difference gradient checks for every layer type.

These are the foundation of trust in the framework: if backward matches a
numerical derivative of forward for each layer, training behaves like the
TensorFlow implementation the paper used.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def analytic_vs_numeric(build, x_shape, batch=4, seed=0, n_checks=6,
                        training=True):
    """Return the worst relative gradient error over sampled parameters."""
    nn.set_floatx(np.float64)
    try:
        rng = np.random.default_rng(seed)
        inp = nn.Input(x_shape)
        out = build(inp)
        model = nn.Model(inp, out).compile("sgd", "mse")
        x = rng.normal(size=(batch,) + x_shape)
        y = rng.normal(size=(batch,) + model.output_shape)

        def forward_loss():
            # Keep stateful buffers (batch-norm) frozen around evaluations.
            saved = [
                {k: v.copy() for k, v in layer.state.items()}
                for layer in model.layers
            ]
            value = model.loss(y, model._forward(x, training))
            for layer, st in zip(model.layers, saved):
                for k in st:
                    layer.state[k] = st[k]
            return value

        y_pred = model._forward(x, training)
        model._backward(model.loss.grad(y, y_pred))
        params, grads = model._collect_params()
        worst = 0.0
        eps = 1e-6
        for key, param in params.items():
            grad = np.asarray(grads[key]).reshape(-1)
            flat = param.reshape(-1)
            assert flat.base is not None, f"param {key} must be a view"
            indices = np.linspace(0, flat.size - 1,
                                  min(n_checks, flat.size)).astype(int)
            for j in indices:
                original = flat[j]
                flat[j] = original + eps
                loss_plus = forward_loss()
                flat[j] = original - eps
                loss_minus = forward_loss()
                flat[j] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                # Relative error with an absolute floor: parameters whose
                # true gradient is ~0 (e.g. a dense bias feeding batch
                # norm) would otherwise divide finite-difference noise by
                # zero.
                err = abs(numeric - grad[j]) / max(
                    1e-4, abs(numeric) + abs(grad[j])
                )
                worst = max(worst, err)
        return worst
    finally:
        nn.set_floatx(np.float32)


TOL = 1e-5


def test_dense_gradients():
    err = analytic_vs_numeric(
        lambda i: nn.layers.Dense(5, activation="tanh", seed=1)(i), (7,)
    )
    assert err < TOL


def test_dense_relu_sigmoid_stack():
    def build(i):
        h = nn.layers.Dense(8, activation="relu", seed=1)(i)
        return nn.layers.Dense(3, activation="sigmoid", seed=2)(h)

    assert analytic_vs_numeric(build, (6,)) < TOL


def test_dense_on_sequence_input():
    # Dense must apply along the last axis of rank-3 tensors.
    def build(i):
        h = nn.layers.Dense(4, activation="tanh", seed=1)(i)
        h = nn.layers.Flatten()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (5, 3)) < TOL


@pytest.mark.parametrize("padding,strides", [("valid", 1), ("valid", 2),
                                             ("same", 1), ("same", 3)])
def test_conv1d_gradients(padding, strides):
    def build(i):
        h = nn.layers.Conv1D(4, 3, strides=strides, padding=padding,
                             activation="tanh", seed=1)(i)
        h = nn.layers.Flatten()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (11, 3)) < TOL


def test_conv1d_no_bias_gradients():
    def build(i):
        h = nn.layers.Conv1D(3, 3, use_bias=False, seed=1)(i)
        h = nn.layers.Flatten()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (9, 2)) < TOL


@pytest.mark.parametrize("pool,strides", [(2, None), (3, 2), (2, 1)])
def test_maxpool_gradients(pool, strides):
    def build(i):
        h = nn.layers.Conv1D(4, 3, activation="tanh", seed=1)(i)
        h = nn.layers.MaxPool1D(pool, strides=strides)(h)
        h = nn.layers.Flatten()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (12, 3)) < TOL


@pytest.mark.parametrize("pool,strides", [(2, None), (3, 2)])
def test_avgpool_gradients(pool, strides):
    def build(i):
        h = nn.layers.Conv1D(4, 3, activation="tanh", seed=1)(i)
        h = nn.layers.AvgPool1D(pool, strides=strides)(h)
        h = nn.layers.Flatten()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (12, 3)) < TOL


def test_global_pools_gradients():
    def build_avg(i):
        h = nn.layers.Conv1D(4, 3, activation="tanh", seed=1)(i)
        h = nn.layers.GlobalAvgPool1D()(h)
        return nn.layers.Dense(2, seed=2)(h)

    def build_max(i):
        h = nn.layers.Conv1D(4, 3, activation="tanh", seed=1)(i)
        h = nn.layers.GlobalMaxPool1D()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build_avg, (10, 3)) < TOL
    assert analytic_vs_numeric(build_max, (10, 3)) < TOL


@pytest.mark.parametrize("return_sequences", [False, True])
def test_lstm_gradients(return_sequences):
    def build(i):
        h = nn.layers.LSTM(5, return_sequences=return_sequences, seed=1)(i)
        if return_sequences:
            h = nn.layers.Flatten()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (6, 4)) < TOL


@pytest.mark.parametrize("padding,return_sequences",
                         [("same", False), ("valid", False), ("same", True)])
def test_convlstm2d_gradients(padding, return_sequences):
    def build(i):
        h = nn.layers.ConvLSTM2D(3, (1, 3), padding=padding,
                                 return_sequences=return_sequences,
                                 seed=1)(i)
        h = nn.layers.Flatten()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (4, 1, 7, 2)) < TOL


def test_batchnorm_gradients_training_mode():
    def build(i):
        h = nn.layers.Dense(6, seed=1)(i)
        h = nn.layers.BatchNorm()(h)
        h = nn.layers.Activation("tanh")(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (5,), batch=6, training=True) < TOL


def test_slice_concat_gradients():
    def build(i):
        a = nn.layers.Slice(-1, 0, 3)(i)
        b = nn.layers.Slice(-1, 3, 6)(i)
        c = nn.layers.Slice(-1, 6, 9)(i)
        merged = nn.layers.Concatenate()([a, b, c])
        h = nn.layers.Flatten()(merged)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (5, 9)) < TOL


def test_add_gradients():
    def build(i):
        a = nn.layers.Dense(4, activation="tanh", seed=1)(i)
        b = nn.layers.Dense(4, activation="tanh", seed=2)(i)
        merged = nn.layers.Add()([a, b])
        return nn.layers.Dense(2, seed=3)(merged)

    assert analytic_vs_numeric(build, (6,)) < TOL


def test_reshape_gradients():
    def build(i):
        h = nn.layers.Reshape((6, 2))(i)
        h = nn.layers.Conv1D(3, 2, activation="tanh", seed=1)(h)
        h = nn.layers.Flatten()(h)
        return nn.layers.Dense(2, seed=2)(h)

    assert analytic_vs_numeric(build, (12,)) < TOL


def test_paper_cnn_architecture_gradients():
    """The actual 3-branch CNN shape, end to end."""

    def build(i):
        branches = []
        for lo in (0, 3, 6):
            h = nn.layers.Slice(-1, lo, lo + 3)(i)
            h = nn.layers.Conv1D(4, 3, activation="relu", seed=lo + 1)(h)
            h = nn.layers.MaxPool1D(2)(h)
            h = nn.layers.Flatten()(h)
            branches.append(h)
        h = nn.layers.Concatenate()(branches)
        h = nn.layers.Dense(8, activation="relu", seed=10)(h)
        h = nn.layers.Dense(4, activation="relu", seed=11)(h)
        return nn.layers.Dense(1, activation="sigmoid", seed=12)(h)

    assert analytic_vs_numeric(build, (12, 9)) < TOL


def test_gradient_of_input_not_required():
    # Backward should not fail when some graph branch is unused by loss —
    # regression guard for the grads-accumulation bookkeeping.
    inp = nn.Input((4,))
    h = nn.layers.Dense(3, seed=1)(inp)
    model = nn.Model(inp, h).compile("sgd", "mse")
    x = np.random.default_rng(0).normal(size=(2, 4))
    y = np.zeros((2, 3))
    loss = model.train_on_batch(x, y)
    assert np.isfinite(loss)
