"""Property tests for ``Histogram.merge``.

The fleet front's exactness claim — per-shard histograms shipped back at
stop and merged at the front equal one histogram observing everything —
rests on merge being an element-wise bucket sum.  These tests pin the
algebra down: associative, commutative, identity, and agreement with
single-registry observation.  Observations use exactly representable
(dyadic) floats so the ``sum`` comparisons are ``==``, not approx.
"""

import random

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry

EDGES = (0.5, 1.0, 2.0, 4.0, 8.0)


def _dyadic_values(seed: int, n: int) -> list[float]:
    """Exactly representable observations (k / 16) spanning every bucket
    including overflow; a deterministic shuffle per seed."""
    rng = random.Random(seed)
    return [rng.randrange(0, 16 * 12) / 16.0 for _ in range(n)]


def _observe_all(values) -> Histogram:
    hist = Histogram(buckets=EDGES)
    for value in values:
        hist.observe(value)
    return hist


def _equal(a: Histogram, b: Histogram) -> bool:
    return a.snapshot() == b.snapshot()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_merge_is_commutative(seed):
    left = _dyadic_values(seed, 40)
    right = _dyadic_values(seed + 100, 25)
    ab = _observe_all(left)
    ab.merge(_observe_all(right))
    ba = _observe_all(right)
    ba.merge(_observe_all(left))
    assert _equal(ab, ba)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_merge_is_associative(seed):
    parts = [_dyadic_values(seed + i, 20 + 7 * i) for i in range(3)]
    left = _observe_all(parts[0])
    left.merge(_observe_all(parts[1]))
    left.merge(_observe_all(parts[2]))       # (a + b) + c
    bc = _observe_all(parts[1])
    bc.merge(_observe_all(parts[2]))
    right = _observe_all(parts[0])
    right.merge(bc)                          # a + (b + c)
    assert _equal(left, right)


def test_empty_histogram_is_the_identity():
    values = _dyadic_values(7, 30)
    merged = _observe_all(values)
    merged.merge(Histogram(buckets=EDGES))
    assert _equal(merged, _observe_all(values))
    onto_empty = Histogram(buckets=EDGES)
    onto_empty.merge(_observe_all(values))
    assert _equal(onto_empty, _observe_all(values))


@pytest.mark.parametrize("n_shards", [2, 3, 5])
def test_sharded_merge_agrees_with_single_registry(n_shards):
    # The fleet invariant: observe a stream of values round-robin across
    # N per-shard registries, merge, and get byte-for-byte the histogram
    # a single registry observing everything would hold.
    values = _dyadic_values(n_shards, 120)
    single = MetricsRegistry()
    for value in values:
        single.histogram("w/lat", buckets=EDGES).observe(value)

    shards = [MetricsRegistry() for _ in range(n_shards)]
    for i, value in enumerate(values):
        shards[i % n_shards].histogram("w/lat", buckets=EDGES).observe(value)
    front = MetricsRegistry()
    for shard in shards:
        front.merge_entries(shard.entries())

    merged = front.histogram("w/lat", buckets=EDGES)
    reference = single.histogram("w/lat", buckets=EDGES)
    assert merged.snapshot() == reference.snapshot()
    assert merged.summary() == reference.summary()


def test_merge_requires_identical_edges():
    a = Histogram(buckets=EDGES)
    b = Histogram(buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        a.merge(b)
