"""Training convergence and serialization for each model family."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def _make_sequence_problem(n=200, time=10, channels=4, seed=0):
    """Binary problem solvable from temporal structure: does the mean of
    channel 0 over the second half exceed the first half?"""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, time, channels)).astype(np.float32)
    first = x[:, : time // 2, 0].mean(axis=1)
    second = x[:, time // 2 :, 0].mean(axis=1)
    y = (second > first).astype(float)[:, None]
    return x, y


def _accuracy(model, x, y):
    p = model.predict(x).reshape(-1)
    return float(np.mean((p >= 0.5) == (y.reshape(-1) >= 0.5)))


class TestConvergence:
    def test_dense_learns_linear_problem(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 8)).astype(np.float32)
        w_true = rng.normal(size=8)
        y = (x @ w_true > 0).astype(float)[:, None]
        inp = nn.Input((8,))
        h = nn.layers.Dense(16, activation="relu", seed=1)(inp)
        out = nn.layers.Dense(1, activation="sigmoid", seed=2)(h)
        model = nn.Model(inp, out).compile(
            nn.optimizers.Adam(learning_rate=0.01), "bce"
        )
        model.fit(x, y, epochs=30, batch_size=32, seed=0)
        assert _accuracy(model, x, y) > 0.95

    def test_conv1d_learns_sequence_problem(self):
        x, y = _make_sequence_problem()
        inp = nn.Input(x.shape[1:])
        h = nn.layers.Conv1D(8, 3, activation="relu", seed=1)(inp)
        h = nn.layers.MaxPool1D(2)(h)
        h = nn.layers.Flatten()(h)
        out = nn.layers.Dense(1, activation="sigmoid", seed=2)(h)
        model = nn.Model(inp, out).compile(
            nn.optimizers.Adam(learning_rate=0.005), "bce"
        )
        model.fit(x, y, epochs=40, batch_size=32, seed=0)
        assert _accuracy(model, x, y) > 0.9

    def test_lstm_learns_sequence_problem(self):
        x, y = _make_sequence_problem(n=150)
        inp = nn.Input(x.shape[1:])
        h = nn.layers.LSTM(12, seed=1)(inp)
        out = nn.layers.Dense(1, activation="sigmoid", seed=2)(h)
        model = nn.Model(inp, out).compile(
            nn.optimizers.Adam(learning_rate=0.01, clipnorm=5.0), "bce"
        )
        model.fit(x, y, epochs=40, batch_size=32, seed=0)
        assert _accuracy(model, x, y) > 0.85

    def test_convlstm_learns_sequence_problem(self):
        x, y = _make_sequence_problem(n=120, time=8, channels=4)
        x5 = x.reshape(x.shape[0], x.shape[1], 1, x.shape[2], 1)
        inp = nn.Input(x5.shape[1:])
        h = nn.layers.ConvLSTM2D(4, (1, 3), seed=1)(inp)
        h = nn.layers.Flatten()(h)
        out = nn.layers.Dense(1, activation="sigmoid", seed=2)(h)
        model = nn.Model(inp, out).compile(
            nn.optimizers.Adam(learning_rate=0.01, clipnorm=5.0), "bce"
        )
        model.fit(x5, y, epochs=30, batch_size=32, seed=0)
        p = model.predict(x5).reshape(-1)
        assert float(np.mean((p >= 0.5) == (y.reshape(-1) >= 0.5))) > 0.8

    def test_loss_decreases_monotonically_enough(self):
        x, y = _make_sequence_problem(n=100)
        inp = nn.Input(x.shape[1:])
        h = nn.layers.Flatten()(inp)
        h = nn.layers.Dense(16, activation="relu", seed=1)(h)
        out = nn.layers.Dense(1, activation="sigmoid", seed=2)(h)
        model = nn.Model(inp, out).compile("adam", "bce")
        history = model.fit(x, y, epochs=15, batch_size=16, seed=0)
        losses = history.history["loss"]
        assert losses[-1] < losses[0]

    def test_dropout_active_only_in_training(self):
        inp = nn.Input((20,))
        h = nn.layers.Dropout(0.5, seed=0)(inp)
        model = nn.Model(inp, h)
        x = np.ones((1, 20), dtype=np.float32)
        inference = model._forward(x, training=False)
        np.testing.assert_array_equal(inference, x)
        training = model._forward(x, training=True)
        assert np.any(training == 0.0)
        # Inverted scaling keeps the expectation.
        assert training.max() == pytest.approx(2.0)

    def test_early_stopping_in_real_fit(self):
        x, y = _make_sequence_problem(n=80)
        # Random validation labels: val loss cannot keep improving, so
        # early stopping must fire well before the epoch budget.
        rng = np.random.default_rng(3)
        y_val = rng.integers(0, 2, size=(20, 1)).astype(float)
        inp = nn.Input(x.shape[1:])
        h = nn.layers.Flatten()(inp)
        out = nn.layers.Dense(1, activation="sigmoid", seed=2)(h)
        model = nn.Model(inp, out).compile("adam", "bce")
        early = nn.callbacks.EarlyStopping(monitor="val_loss", patience=3)
        history = model.fit(
            x[:60], y[:60], epochs=200, batch_size=16,
            validation_data=(x[60:], y_val), callbacks=[early], seed=0,
        )
        assert len(history.epochs) < 200
        assert early.stopped_epoch >= 0


class TestSerialization:
    def _model(self, seed):
        inp = nn.Input((6, 9))
        a = nn.layers.Slice(-1, 0, 3)(inp)
        b = nn.layers.Slice(-1, 3, 9)(inp)
        ca = nn.layers.Conv1D(4, 3, activation="relu", name="conv_a",
                              seed=seed)(a)
        cb = nn.layers.Conv1D(4, 3, activation="relu", name="conv_b",
                              seed=seed + 1)(b)
        fa = nn.layers.Flatten()(ca)
        fb = nn.layers.Flatten()(cb)
        h = nn.layers.Concatenate()([fa, fb])
        h = nn.layers.BatchNorm(name="bn")(h)
        out = nn.layers.Dense(1, activation="sigmoid", name="head",
                              seed=seed + 2)(h)
        return nn.Model(inp, out)

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "weights.npz"
        model = self._model(seed=0)
        # Touch batch-norm state so it differs from the fresh default.
        model._forward(
            np.random.default_rng(0).normal(size=(8, 6, 9)).astype(np.float32),
            training=True,
        )
        nn.save_weights(model, path)
        clone = self._model(seed=50)
        nn.load_weights(clone, path)
        x = np.random.default_rng(1).normal(size=(4, 6, 9)).astype(np.float32)
        np.testing.assert_allclose(model.predict(x), clone.predict(x),
                                   rtol=1e-6)

    def test_strict_load_rejects_mismatched_architecture(self, tmp_path):
        path = tmp_path / "weights.npz"
        nn.save_weights(self._model(seed=0), path)
        inp = nn.Input((6, 9))
        out = nn.layers.Dense(1, name="head", seed=0)(
            nn.layers.Flatten()(inp)
        )
        other = nn.Model(inp, out)
        with pytest.raises(ValueError, match="mismatch"):
            nn.load_weights(other, path)

    def test_non_strict_load_is_partial(self, tmp_path):
        path = tmp_path / "weights.npz"
        model = self._model(seed=0)
        nn.save_weights(model, path)
        clone = self._model(seed=9)
        nn.load_weights(clone, path, strict=False)
        np.testing.assert_allclose(
            model.get_layer("head").params["W"],
            clone.get_layer("head").params["W"],
        )
