"""Segmentation math, Rodrigues rotations, orientation fusion and units."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal.orientation import (
    ComplementaryFilter,
    accel_inclination,
    estimate_euler_angles,
)
from repro.signal.rotation import (
    is_rotation_matrix,
    rodrigues_matrix,
    rotate_vectors,
    rotation_between,
)
from repro.signal.segmentation import (
    SegmentationConfig,
    label_segments,
    segment_signal,
    segment_starts,
)
from repro.signal.units import GRAVITY, accel_from_g, accel_to_g, gyro_to_dps


# ---------------------------------------------------------------------------
# Segmentation
# ---------------------------------------------------------------------------
class TestSegmentationConfig:
    def test_paper_configurations(self):
        # Paper: n = 20 -> 200 ms at 100 Hz; 50 % overlap halves the hop.
        cfg = SegmentationConfig(200, 0.5, 100.0)
        assert cfg.window_samples == 20
        assert cfg.stride_samples == 10
        assert cfg.overlap_ms == 100.0

    def test_zero_overlap(self):
        cfg = SegmentationConfig(400, 0.0, 100.0)
        assert cfg.stride_samples == cfg.window_samples == 40

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SegmentationConfig(0, 0.5)
        with pytest.raises(ValueError):
            SegmentationConfig(200, 1.0)
        with pytest.raises(ValueError):
            SegmentationConfig(200, -0.1)

    @given(
        n=st.integers(1, 2000),
        window_ms=st.sampled_from([100.0, 200.0, 300.0, 400.0]),
        overlap=st.sampled_from([0.0, 0.25, 0.5, 0.75]),
    )
    @settings(max_examples=80, deadline=None)
    def test_starts_invariants(self, n, window_ms, overlap):
        cfg = SegmentationConfig(window_ms, overlap, 100.0)
        starts = segment_starts(n, cfg)
        w = cfg.window_samples
        if n < w:
            assert starts.size == 0
            return
        # Every window fits; hops are uniform; first window starts at 0.
        assert starts[0] == 0
        assert starts[-1] + w <= n
        if starts.size > 1:
            assert np.all(np.diff(starts) == cfg.stride_samples)
        # Maximal: one more hop would overflow.
        assert starts[-1] + cfg.stride_samples + w > n

    def test_segment_signal_contents(self):
        x = np.arange(30, dtype=float).reshape(-1, 1) @ np.ones((1, 2))
        cfg = SegmentationConfig(100, 0.5, 100.0)  # window 10, stride 5
        segs = segment_signal(x, cfg)
        assert segs.shape == (5, 10, 2)
        np.testing.assert_array_equal(segs[1, :, 0], np.arange(5, 15))

    def test_segment_signal_rejects_1d(self):
        with pytest.raises(ValueError):
            segment_signal(np.zeros(100), SegmentationConfig(100))

    def test_label_segments_majority(self):
        labels = np.zeros(40, dtype=int)
        labels[20:] = 1
        cfg = SegmentationConfig(200, 0.0, 100.0)  # windows of 20
        out = label_segments(labels, cfg, min_fraction=0.5)
        np.testing.assert_array_equal(out, [0, 1])

    def test_label_segments_threshold_sensitivity(self):
        labels = np.zeros(20, dtype=int)
        labels[12:] = 1  # 40 % of the single window
        cfg = SegmentationConfig(200, 0.0, 100.0)
        assert label_segments(labels, cfg, min_fraction=0.5)[0] == 0
        assert label_segments(labels, cfg, min_fraction=0.3)[0] == 1


# ---------------------------------------------------------------------------
# Rotations
# ---------------------------------------------------------------------------
class TestRodrigues:
    @given(
        axis=st.tuples(*[st.floats(-1, 1) for _ in range(3)]).filter(
            lambda a: np.linalg.norm(a) > 1e-3
        ),
        angle=st.floats(-np.pi, np.pi),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_a_rotation_matrix(self, axis, angle):
        assert is_rotation_matrix(rodrigues_matrix(np.array(axis), angle))

    def test_known_rotation(self):
        r = rodrigues_matrix([0, 0, 1], np.pi / 2)
        np.testing.assert_allclose(r @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            rodrigues_matrix([0, 0, 0], 1.0)

    @given(
        u=st.tuples(*[st.floats(-1, 1) for _ in range(3)]).filter(
            lambda a: np.linalg.norm(a) > 1e-2
        ),
        v=st.tuples(*[st.floats(-1, 1) for _ in range(3)]).filter(
            lambda a: np.linalg.norm(a) > 1e-2
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_rotation_between_maps_exactly(self, u, v):
        u, v = np.array(u), np.array(v)
        r = rotation_between(u, v)
        assert is_rotation_matrix(r, atol=1e-7)
        mapped = r @ (u / np.linalg.norm(u))
        # atol covers the intentional snap-to-identity band for angles
        # below ~1.4e-6 rad (cos within 1e-12 of 1).
        np.testing.assert_allclose(mapped, v / np.linalg.norm(v), atol=5e-6)

    def test_antiparallel_case(self):
        r = rotation_between([0, 0, 1], [0, 0, -1])
        np.testing.assert_allclose(r @ [0, 0, 1], [0, 0, -1], atol=1e-9)

    def test_parallel_case_is_identity(self):
        np.testing.assert_allclose(
            rotation_between([0, 0, 2], [0, 0, 5]), np.eye(3), atol=1e-12
        )

    def test_rotate_vectors_rows(self):
        r = rodrigues_matrix([0, 0, 1], np.pi / 2)
        out = rotate_vectors(r, np.array([[1.0, 0, 0], [0, 1.0, 0]]))
        np.testing.assert_allclose(out, [[0, 1, 0], [-1, 0, 0]], atol=1e-12)

    def test_is_rotation_matrix_rejects_reflection(self):
        reflection = np.diag([1.0, 1.0, -1.0])
        assert not is_rotation_matrix(reflection)


# ---------------------------------------------------------------------------
# Orientation
# ---------------------------------------------------------------------------
class TestOrientation:
    def test_static_inclination(self):
        pitch, roll = accel_inclination(np.array([[0.0, 0.0, 1.0]]))
        assert pitch[0] == pytest.approx(0.0)
        assert roll[0] == pytest.approx(0.0)
        pitch, roll = accel_inclination(np.array([[1.0, 0.0, 0.0]]))
        assert pitch[0] == pytest.approx(90.0)

    def test_converges_to_static_tilt(self):
        # 30 deg pitch, held: the filter must converge to 30 deg.
        n = 800
        accel = np.tile([np.sin(np.radians(30)), 0.0,
                         np.cos(np.radians(30))], (n, 1))
        gyro = np.zeros((n, 3))
        angles = estimate_euler_angles(accel, gyro, fs=100.0)
        assert angles[-1, 0] == pytest.approx(30.0, abs=0.5)

    def test_yaw_integrates_gyro(self):
        n = 200
        accel = np.tile([0.0, 0.0, 1.0], (n, 1))
        gyro = np.zeros((n, 3))
        gyro[:, 2] = 90.0  # deg/s about z
        angles = estimate_euler_angles(accel, gyro, fs=100.0)
        # After 2 s minus the first sample's bootstrap: ~179 deg.
        assert angles[-1, 2] == pytest.approx(90.0 * (n - 1) / 100.0, abs=1e-6)

    def test_process_equals_streaming_update(self):
        rng = np.random.default_rng(0)
        accel = rng.normal([0, 0, 1], 0.05, size=(150, 3))
        gyro = rng.normal(0, 20, size=(150, 3))
        batch = ComplementaryFilter(fs=100.0).process(accel, gyro)
        stream_filter = ComplementaryFilter(fs=100.0)
        streamed = np.vstack(
            [stream_filter.update(accel[i], gyro[i]) for i in range(150)]
        )
        np.testing.assert_allclose(batch, streamed, atol=1e-9)

    def test_shape_validation(self):
        f = ComplementaryFilter()
        with pytest.raises(ValueError):
            f.process(np.zeros((5, 3)), np.zeros((4, 3)))

    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            ComplementaryFilter(fs=0.0)


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------
class TestUnits:
    def test_accel_round_trip(self):
        x = np.array([1.0, -2.0])
        np.testing.assert_allclose(
            accel_to_g(accel_from_g(x, "m/s^2"), "m/s^2"), x
        )

    def test_g_conversion_value(self):
        assert accel_to_g(np.array([GRAVITY]), "m/s^2")[0] == pytest.approx(1.0)

    def test_gyro_conversion(self):
        assert gyro_to_dps(np.array([np.pi]), "rad/s")[0] == pytest.approx(180.0)

    def test_unknown_units_rejected(self):
        with pytest.raises(ValueError):
            accel_to_g(np.zeros(2), "ft/s^2")
        with pytest.raises(ValueError):
            gyro_to_dps(np.zeros(2), "rpm")


class TestSegmentationVectorizationParity:
    """The sliding_window_view fast path must match a per-window loop."""

    @given(
        n=st.integers(min_value=0, max_value=300),
        window_ms=st.sampled_from([100.0, 250.0, 400.0]),
        overlap=st.sampled_from([0.0, 0.25, 0.5, 0.75]),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_signal_matches_loop(self, n, window_ms, overlap):
        config = SegmentationConfig(window_ms=window_ms, overlap=overlap)
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 9))
        got = segment_signal(x, config)
        starts = segment_starts(n, config)
        window = config.window_samples
        expected = np.stack([x[s:s + window] for s in starts]) if len(starts) \
            else np.empty((0, window, 9))
        assert got.shape == expected.shape
        assert np.array_equal(got, expected)
        assert got.flags["C_CONTIGUOUS"]

    @given(
        n=st.integers(min_value=0, max_value=300),
        min_fraction=st.sampled_from([0.25, 0.5, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_label_segments_matches_loop(self, n, min_fraction):
        config = SegmentationConfig(window_ms=200.0, overlap=0.5)
        rng = np.random.default_rng(n + 1)
        labels = rng.integers(0, 2, size=n)
        got = label_segments(labels, config, min_fraction=min_fraction)
        starts = segment_starts(n, config)
        window = config.window_samples
        expected = np.array(
            [int(labels[s:s + window].mean() >= min_fraction) for s in starts],
            dtype=int,
        )
        assert np.array_equal(got, expected)
