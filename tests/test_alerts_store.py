"""Bounded JSONL event store: rotation, pruning, resume, queries."""

from __future__ import annotations

import json
import os

import pytest

from repro.alerts import EventStore, EventStoreConfig, load_segment


def _store(tmp_path, **kw):
    kw.setdefault("max_segment_bytes", 1024)
    kw.setdefault("max_segments", 3)
    return EventStore(EventStoreConfig(root=str(tmp_path / "events"), **kw))


def _event(i, **extra):
    return {"kind": "escalation", "stream": f"s{i % 2}", "t": float(i),
            **extra}


def test_config_validation(tmp_path):
    with pytest.raises(ValueError, match="max_segment_bytes"):
        EventStoreConfig(root=str(tmp_path), max_segment_bytes=10)
    with pytest.raises(ValueError, match="max_segments"):
        EventStoreConfig(root=str(tmp_path), max_segments=0)


def test_append_stamps_seq_and_requires_kind(tmp_path):
    store = _store(tmp_path)
    first = store.append({"kind": "alert", "stream": "s0"})
    second = store.append({"kind": "resolve", "stream": "s0"})
    assert (first["seq"], second["seq"]) == (0, 1)
    with pytest.raises(ValueError, match="kind"):
        store.append({"stream": "s0"})
    with pytest.raises(ValueError, match="kind"):
        store.append("not a dict")
    with pytest.raises(TypeError):              # unserializable payload
        store.append({"kind": "x", "payload": object()})
    # The failed appends left nothing behind.
    assert [e["seq"] for e in store.events()] == [0, 1]


def test_segment_header_versioned_and_validated(tmp_path):
    store = _store(tmp_path)
    store.append(_event(0))
    path = store.segment_path(store.segment_indices()[0])
    header, events = load_segment(path)
    assert header["format"] == "repro-events" and header["version"] == 1
    assert len(events) == 1

    bad = tmp_path / "bad.jsonl"
    bad.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_segment(bad)
    bad.write_text("not json\n")
    with pytest.raises(ValueError, match="not JSON"):
        load_segment(bad)
    bad.write_text('{"format": "other"}\n')
    with pytest.raises(ValueError, match="not a repro-events"):
        load_segment(bad)
    bad.write_text('{"format": "repro-events", "version": 99}\n')
    with pytest.raises(ValueError, match="version"):
        load_segment(bad)


def test_rotation_bounds_disk(tmp_path):
    store = _store(tmp_path, max_segment_bytes=1024, max_segments=3)
    for i in range(200):                        # far beyond 3 KiB of events
        store.append(_event(i, padding="x" * 40))
    assert len(store.segment_indices()) <= 3
    stats = store.stats()
    assert stats["segments"] <= 3
    assert stats["bytes"] <= 3 * 1024 + 1024    # one segment may overflow
    assert stats["appended"] == 200
    # Survivors are the newest events, still ordered by seq.
    seqs = [e["seq"] for e in store.events()]
    assert seqs == sorted(seqs)
    assert seqs[-1] == 199
    assert len(seqs) < 200                      # oldest were pruned


def test_reopen_resumes_segment_and_seq(tmp_path):
    store = _store(tmp_path)
    for i in range(5):
        store.append(_event(i))
    reopened = _store(tmp_path)
    record = reopened.append(_event(5))
    assert record["seq"] == 5                   # numbering continued
    assert len(reopened.events()) == 6
    assert reopened.segment_indices() == store.segment_indices()


def test_reopen_with_corrupt_trailing_segment(tmp_path):
    store = _store(tmp_path)
    for i in range(3):
        store.append(_event(i))
    # A foreign/corrupt file that sorts after the real segment.
    last = store.segment_indices()[-1]
    corrupt = store.segment_path(last + 1)
    with open(corrupt, "w", encoding="utf-8") as fh:
        fh.write("garbage\n")
    reopened = _store(tmp_path)
    record = reopened.append(_event(3))
    assert record["seq"] == 3                   # seq from surviving events
    # The corrupt file was left alone; writing continued after it.
    with open(corrupt, "r", encoding="utf-8") as fh:
        assert fh.read() == "garbage\n"
    assert reopened.segment_indices()[-1] > last + 1


def test_active_segment_always_complete_json(tmp_path):
    """Atomic rewrite: the on-disk active segment parses after every
    append (no truncated trailing line for a concurrent reader)."""
    store = _store(tmp_path)
    for i in range(10):
        store.append(_event(i))
        path = store.segment_path(store._active_index)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                json.loads(line)                # every line parses


def test_query_filters(tmp_path):
    store = _store(tmp_path)
    store.append({"kind": "alert", "stream": "s0", "severity": "critical",
                  "t": 1.0})
    store.append({"kind": "alert", "stream": "s1", "severity": "suspect",
                  "t": 2.0})
    store.append({"kind": "resolve", "stream": "s0", "severity": "critical",
                  "t": 5.0})
    store.append({"kind": "escalation", "stream": "s0"})   # no t
    assert len(store.query()) == 4
    assert [e["t"] for e in store.query(stream="s0", kind="alert")] == [1.0]
    assert [e["stream"] for e in store.query(severity="suspect")] == ["s1"]
    # Time range is inclusive and excludes t-less events.
    assert [e["t"] for e in store.query(since=2.0, until=5.0)] == [2.0, 5.0]
    # limit keeps the newest.
    assert [e["kind"] for e in store.query(limit=2)] == ["resolve",
                                                         "escalation"]


def test_store_root_created_on_demand(tmp_path):
    root = tmp_path / "deep" / "nested" / "events"
    store = EventStore(EventStoreConfig(root=str(root)))
    store.append({"kind": "alert"})
    assert os.path.isdir(root)


# ----------------------------------------------------------------------
# mid-segment corruption tolerance & graceful sealing
# ----------------------------------------------------------------------

def _corrupt_middle_line(store, index, position=2):
    """Replace one event line inside a valid segment with garbage."""
    path = store.segment_path(index)
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    lines[position] = "{torn write\n"
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(lines)


def test_query_skips_corrupt_line_mid_segment_not_whole_segment(tmp_path):
    store = _store(tmp_path)
    for i in range(6):
        store.append(_event(i))
    index = store.segment_indices()[-1]
    _corrupt_middle_line(store, index)          # kills event seq=1
    reopened = _store(tmp_path)
    events = reopened.events()
    # One line lost, the other five still serve (old behaviour dropped
    # the whole segment).
    assert [e["seq"] for e in events] == [0, 2, 3, 4, 5]
    assert reopened.query(stream="s0") == [e for e in events
                                           if e["stream"] == "s0"]


def test_corrupt_lines_counted_on_metric_and_stats(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    store = _store(tmp_path)
    for i in range(5):
        store.append(_event(i))
    _corrupt_middle_line(store, store.segment_indices()[-1])
    registry = MetricsRegistry()
    reopened = EventStore(EventStoreConfig(root=str(tmp_path / "events"),
                                           max_segment_bytes=1024,
                                           max_segments=3),
                          registry=registry)
    reopened.events()
    assert reopened.corrupt_lines >= 1
    assert registry.counter("store/corrupt_lines").value >= 1
    assert reopened.stats()["corrupt_lines"] == reopened.corrupt_lines


def test_load_segment_strict_by_default_on_body_lines(tmp_path):
    store = _store(tmp_path)
    for i in range(4):
        store.append(_event(i))
    index = store.segment_indices()[-1]
    _corrupt_middle_line(store, index)
    with pytest.raises(ValueError, match="corrupt event line"):
        load_segment(store.segment_path(index))
    _, events = load_segment(store.segment_path(index), skip_corrupt=True)
    assert len(events) == 3


def test_resume_after_mid_segment_corruption_continues_numbering(tmp_path):
    store = _store(tmp_path)
    for i in range(6):
        store.append(_event(i))
    _corrupt_middle_line(store, store.segment_indices()[-1])
    reopened = _store(tmp_path)
    record = reopened.append(_event(6))
    assert record["seq"] == 6       # numbering from surviving events
    assert [e["seq"] for e in reopened.events()] == [0, 2, 3, 4, 5, 6]


def test_seal_rotates_active_segment(tmp_path):
    store = _store(tmp_path)
    for i in range(3):
        store.append(_event(i))
    active_before = store._active_index
    assert store.seal() is True
    assert store._active_index == active_before + 1
    # The sealed segment is complete and a reopen starts after it.
    _, sealed_events = load_segment(store.segment_path(active_before))
    assert [e["seq"] for e in sealed_events] == [0, 1, 2]
    assert store.seal() is False    # fresh active segment: nothing to seal
    reopened = _store(tmp_path)
    assert reopened.append(_event(3))["seq"] == 3
    assert len(reopened.events()) == 4
