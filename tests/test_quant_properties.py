"""More property-based coverage of the quantization primitives."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    activation_qparams,
    dequantize,
    quantize,
    quantize_weights_per_channel,
)


class TestQuantizeProperties:
    @given(
        lo=st.floats(-50, 0),
        hi=st.floats(0.01, 50),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantize_is_idempotent_on_grid(self, lo, hi, seed):
        """Dequantized values re-quantize to the same integers."""
        params = activation_qparams(lo, hi)
        rng = np.random.default_rng(seed)
        x = rng.uniform(lo, hi, size=64)
        q1 = quantize(x, params)
        q2 = quantize(dequantize(q1, params), params)
        np.testing.assert_array_equal(q1, q2)

    @given(lo=st.floats(-50, -0.01), hi=st.floats(0.01, 50))
    @settings(max_examples=60, deadline=None)
    def test_range_endpoints_representable(self, lo, hi):
        params = activation_qparams(lo, hi)
        q = quantize(np.array([lo, hi]), params)
        err = np.abs(dequantize(q, params) - [lo, hi])
        assert err.max() <= params.scale

    @given(seed=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_quantization_error_uniform_bound(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 2, size=256)
        params = activation_qparams(float(x.min()), float(x.max()))
        err = np.abs(dequantize(quantize(x, params), params) - x)
        assert err.max() <= params.scale / 2 + 1e-12

    @given(seed=st.integers(0, 100), cout=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_per_channel_error_bounded_per_channel(self, seed, cout):
        rng = np.random.default_rng(seed)
        w = rng.normal(0, rng.uniform(0.01, 3.0), size=(5, 3, cout))
        q, scales = quantize_weights_per_channel(w, channel_axis=2)
        restored = q.astype(np.float64) * scales.reshape(1, 1, -1)
        for j in range(cout):
            err = np.abs(restored[..., j] - w[..., j]).max()
            assert err <= scales[j] / 2 + 1e-12

    def test_monotonicity(self):
        params = activation_qparams(-1.0, 1.0)
        x = np.linspace(-1, 1, 513)
        q = quantize(x, params).astype(int)
        assert np.all(np.diff(q) >= 0)
