"""Mounting-misalignment model, gravity ramps, pipeline builders, runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import build_merged_dataset
from repro.datasets.synthesis.generator import mounting_rotation
from repro.datasets.synthesis.trajectory import MotionBuilder, make_power_ease
from repro.experiments.configs import QUICK
from repro.experiments.runners import build_experiment_dataset, training_config
from repro.signal.rotation import is_rotation_matrix


class TestMountingRotation:
    def test_is_a_rotation(self):
        rot = mounting_rotation("S01", 0, base_seed=1)
        assert is_rotation_matrix(rot, atol=1e-9)

    def test_stable_per_subject_across_trials(self):
        a = mounting_rotation("S01", 0, base_seed=1)
        b = mounting_rotation("S01", 1, base_seed=1)
        # Same subject: close (re-donning jitter only), but not identical.
        assert not np.allclose(a, b)
        angle_between = np.degrees(
            np.arccos(np.clip((np.trace(a.T @ b) - 1) / 2, -1, 1))
        )
        assert angle_between < 15.0

    def test_differs_between_subjects(self):
        a = mounting_rotation("S01", 0, base_seed=1)
        b = mounting_rotation("S02", 0, base_seed=1)
        angle_between = np.degrees(
            np.arccos(np.clip((np.trace(a.T @ b) - 1) / 2, -1, 1))
        )
        assert angle_between > 1.0

    def test_deterministic(self):
        np.testing.assert_array_equal(
            mounting_rotation("S07", 3, base_seed=9),
            mounting_rotation("S07", 3, base_seed=9),
        )

    def test_misalignment_is_moderate(self):
        # Garment tilt should be degrees, not tens of degrees, on average.
        angles = []
        for i in range(60):
            rot = mounting_rotation(f"S{i}", 0, base_seed=0)
            angles.append(np.degrees(
                np.arccos(np.clip((np.trace(rot) - 1) / 2, -1, 1))
            ))
        assert 2.0 < np.mean(angles) < 30.0


class TestGravityRamp:
    def test_progressive_unloading_profile(self):
        b = MotionBuilder(fs=100.0)
        b.hold(2.0)
        b.gravity_ramp(0.5, 1.5, floor=0.1, power=2.0)
        out = b.render()
        mag = np.linalg.norm(out["accel"], axis=1)
        # Shallow early (u=0.3 -> 1-0.9*0.09 = 0.92), deep at the end.
        assert mag[80] == pytest.approx(1.0 - 0.9 * 0.3**2, abs=0.03)
        assert mag[149] == pytest.approx(0.1, abs=0.05)
        # Before the ramp: untouched.
        assert mag[30] == pytest.approx(1.0, abs=1e-6)

    def test_front_loaded_with_power_below_one(self):
        b = MotionBuilder(fs=100.0)
        b.hold(2.0)
        b.gravity_ramp(0.5, 1.5, floor=0.05, power=0.5)
        mag = np.linalg.norm(b.render()["accel"], axis=1)
        # Half-way through, a front-loaded ramp is already deep.
        assert mag[100] < 0.45

    def test_recovery_after_ramp_end(self):
        b = MotionBuilder(fs=100.0)
        b.hold(2.0)
        b.gravity_ramp(0.5, 1.0, floor=0.1, power=1.0)
        mag = np.linalg.norm(b.render()["accel"], axis=1)
        assert mag[130] == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        b = MotionBuilder(fs=100.0)
        with pytest.raises(ValueError):
            b.gravity_ramp(1.0, 0.5, 0.1)
        with pytest.raises(ValueError):
            b.gravity_ramp(0.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            b.gravity_ramp(0.0, 1.0, 0.5, power=0.0)


class TestPowerEase:
    def test_custom_ease_used_by_move(self):
        b = MotionBuilder(fs=100.0)
        b.hold(0.5)
        b.move(1.0, pitch=80.0, ease=make_power_ease(3.0))
        out = b.render()
        # Cubic ease: at mid-move progress is 0.125 of the way.
        assert out["angles"][100, 0] == pytest.approx(10.0, abs=1.5)

    def test_invalid_power_rejected(self):
        with pytest.raises(ValueError):
            make_power_ease(0.0)

    def test_unknown_string_ease_rejected(self):
        b = MotionBuilder(fs=100.0)
        with pytest.raises(ValueError, match="unknown ease"):
            b.move(1.0, pitch=10, ease="wobble")


class TestMergedDatasetPipeline:
    @pytest.fixture(scope="class")
    def merged(self):
        return build_merged_dataset(kfall_subjects=2, selfcollected_subjects=2,
                                    duration_scale=0.3, seed=3)

    def test_subject_count_and_prefixes(self, merged):
        subjects = merged.subjects
        assert len(subjects) == 4
        assert any(s.startswith("KF") for s in subjects)
        assert any(s.startswith("SC") for s in subjects)

    def test_everything_in_canonical_frame_and_g(self, merged):
        for rec in merged:
            assert rec.frame == "canonical"
            assert rec.accel_unit == "g"

    def test_kfall_gravity_restored_after_alignment(self, merged):
        standing = [r for r in merged
                    if r.task_id == 1 and r.dataset == "kfall"]
        assert standing
        mean = standing[0].accel.mean(axis=0)
        assert mean[2] == pytest.approx(1.0, abs=0.12)

    def test_task_union(self, merged):
        # KFall subjects contribute 36 tasks, self-collected 44.
        assert len(merged.task_ids) == 44


class TestRunnersPlumbing:
    def test_dataset_cache_returns_same_object(self):
        a = build_experiment_dataset(QUICK)
        b = build_experiment_dataset(QUICK)
        assert a is b

    def test_training_config_inherits_scale(self):
        cfg = training_config(QUICK)
        assert cfg.epochs == QUICK.epochs
        assert cfg.patience == QUICK.patience
        custom = training_config(QUICK, augment=False)
        assert custom.augment is False
