"""ROC/PR curves and the false-positive-budget threshold selector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import auc, pr_curve, roc_curve, threshold_for_fp_budget


class TestRocCurve:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, thresholds = roc_curve(y, s)
        assert auc(fpr, tpr) == pytest.approx(1.0)

    def test_random_scores_auc_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        s = rng.random(4000)
        fpr, tpr, _ = roc_curve(y, s)
        assert auc(fpr, tpr) == pytest.approx(0.5, abs=0.05)

    def test_inverted_scores_auc_near_zero(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        fpr, tpr, _ = roc_curve(y, s)
        assert auc(fpr, tpr) == pytest.approx(0.0)

    @given(
        n=st.integers(10, 200),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_curve_is_monotone_and_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=n)
        if y.sum() in (0, n):
            y[0], y[-1] = 0, 1
        s = rng.random(n)
        fpr, tpr, _ = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0)
        assert tpr[-1] == pytest.approx(1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            roc_curve(np.zeros(5), np.random.default_rng(0).random(5))


class TestPrCurve:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        recall, precision, _ = pr_curve(y, s)
        assert precision[np.argmax(recall >= 1.0)] == pytest.approx(1.0)

    def test_precision_at_full_recall_is_prevalence(self):
        y = np.array([1, 0, 0, 0])
        s = np.array([0.1, 0.2, 0.3, 0.4])  # positives ranked last
        recall, precision, _ = pr_curve(y, s)
        assert recall[-1] == 1.0
        assert precision[-1] == pytest.approx(0.25)

    def test_needs_positives(self):
        with pytest.raises(ValueError, match="positive"):
            pr_curve(np.zeros(4), np.arange(4, dtype=float))


class TestThresholdSelection:
    def test_respects_budget_on_validation(self):
        rng = np.random.default_rng(1)
        neg = rng.normal(0.2, 0.1, size=500)
        pos = rng.normal(0.8, 0.1, size=50)
        y = np.concatenate([np.zeros(500), np.ones(50)])
        s = np.clip(np.concatenate([neg, pos]), 0, 1)
        threshold = threshold_for_fp_budget(y, s, max_fpr=0.02)
        fired = s >= threshold
        measured_fpr = fired[:500].mean()
        assert measured_fpr <= 0.02 + 1e-9
        # And still catches most positives (distributions barely overlap).
        assert fired[500:].mean() > 0.8

    def test_tighter_budget_raises_threshold(self):
        rng = np.random.default_rng(2)
        y = np.concatenate([np.zeros(300), np.ones(300)])
        s = np.concatenate([rng.normal(0.4, 0.15, 300),
                            rng.normal(0.6, 0.15, 300)])
        loose = threshold_for_fp_budget(y, s, max_fpr=0.2)
        tight = threshold_for_fp_budget(y, s, max_fpr=0.01)
        assert tight >= loose

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            threshold_for_fp_budget([0, 1], [0.1, 0.9], max_fpr=1.5)


class TestAuc:
    def test_unit_square_diagonal(self):
        assert auc([0, 1], [0, 1]) == pytest.approx(0.5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            auc([0.0], [1.0])
