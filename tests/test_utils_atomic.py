"""Atomic file writes (repro.utils) and their call sites."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.utils import atomic_write


def _entries(directory):
    return sorted(os.listdir(directory))


class TestAtomicWrite:
    def test_text_write_lands_complete(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path) as fh:
            fh.write("hello\n")
        assert path.read_text(encoding="utf-8") == "hello\n"
        assert _entries(tmp_path) == ["out.txt"]   # no stray temp files

    def test_binary_write(self, tmp_path):
        path = tmp_path / "blob.bin"
        with atomic_write(path, "wb") as fh:
            fh.write(b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_failure_preserves_previous_content(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text("old", encoding="utf-8")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write("half-writt")
                raise RuntimeError("disk on fire")
        assert path.read_text(encoding="utf-8") == "old"
        assert _entries(tmp_path) == ["config.json"]

    def test_failure_on_fresh_path_leaves_nothing(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(ValueError):
            with atomic_write(path) as fh:
                fh.write("x")
                raise ValueError("boom")
        assert _entries(tmp_path) == []

    @pytest.mark.parametrize("mode", ["r", "a", "r+", "w+"])
    def test_non_write_modes_rejected(self, tmp_path, mode):
        with pytest.raises(ValueError, match="write modes"):
            with atomic_write(tmp_path / "x", mode):
                pass


class TestAtomicCallSites:
    def test_trace_export_leaves_no_temp_files(self, tmp_path):
        from repro.obs import TraceCollector

        collector = TraceCollector(enabled=True)
        with collector.span("unit/atomic"):
            pass
        path = tmp_path / "trace.jsonl"
        assert collector.export_jsonl(path) == 1
        lines = path.read_text(encoding="utf-8").splitlines()
        assert any(json.loads(s)["name"] == "unit/atomic" for s in lines)
        assert _entries(tmp_path) == ["trace.jsonl"]

    def test_dataset_save_leaves_no_temp_files(self, tmp_path,
                                               tiny_selfcollected):
        from repro.datasets import Dataset, load_dataset, save_dataset

        subset = Dataset("tiny", list(tiny_selfcollected)[:2])
        path = tmp_path / "snap.npz"
        save_dataset(subset, path)
        assert _entries(tmp_path) == ["snap.npz"]
        loaded = load_dataset(path)
        np.testing.assert_allclose(loaded[0].accel, subset[0].accel,
                                   atol=1e-6)
