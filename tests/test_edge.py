"""Edge deployment: cost model, memory planner, deployment report, codegen."""

from __future__ import annotations

import shutil
import subprocess

import numpy as np
import pytest

from repro import nn
from repro.core.architecture import build_lightweight_cnn
from repro.edge import (
    CortexM7Config,
    STM32F722,
    deployment_report,
    estimate_latency,
    flash_footprint,
    generate_c_source,
    plan_arena,
    ram_footprint,
)
from repro.quant import QuantizedModel


@pytest.fixture(scope="module")
def qmodel():
    rng = np.random.default_rng(0)
    model = build_lightweight_cnn(40, seed=1)
    model.compile("adam", "bce")
    x = rng.normal(size=(300, 40, 9)).astype(np.float32)
    y = (x[:, :, 0].mean(axis=1) > 0).astype(float)[:, None]
    model.fit(x, y, epochs=3, batch_size=64, seed=0)
    return QuantizedModel.convert(model, x[:150]), x


class TestArenaPlanner:
    def test_plan_is_collision_free(self, qmodel):
        qm, _ = qmodel
        plan = plan_arena(qm)
        from repro.edge.memory import _tensor_lifetimes

        lives = {t.uid: t for t in _tensor_lifetimes(qm)}
        placed = [(lives[uid], off) for uid, off in plan["offsets"].items()]
        for i, (ta, oa) in enumerate(placed):
            for tb, ob in placed[i + 1 :]:
                if ta.overlaps(tb):
                    no_overlap = (oa + ta.size_bytes <= ob
                                  or ob + tb.size_bytes <= oa)
                    assert no_overlap, f"{ta.uid} and {tb.uid} collide"

    def test_plan_bounded_by_naive_and_lower_bound(self, qmodel):
        qm, _ = qmodel
        plan = plan_arena(qm)
        assert plan["lower_bound_bytes"] <= plan["arena_bytes"]
        assert plan["arena_bytes"] <= plan["naive_bytes"]

    def test_reuse_actually_happens(self, qmodel):
        qm, _ = qmodel
        plan = plan_arena(qm)
        # The branched CNN has plenty of dead tensors: packing must beat
        # the naive sum substantially.
        assert plan["arena_bytes"] < 0.8 * plan["naive_bytes"]


class TestFootprints:
    def test_flash_matches_component_sums(self, qmodel):
        qm, _ = qmodel
        flash = flash_footprint(qm)
        assert flash["weight_bytes"] == qm.weight_bytes
        assert flash["bias_bytes"] == qm.bias_bytes
        assert flash["total_bytes"] == (
            flash["weight_bytes"] + flash["bias_bytes"]
            + flash["metadata_bytes"]
        )

    def test_model_fits_the_papers_board(self, qmodel):
        qm, _ = qmodel
        report = deployment_report(qm)
        assert report["fits_flash"]
        assert report["fits_ram"]
        assert report["meets_deadline"]
        # Same ballpark as the paper's 67.03 KiB model.
        assert 30.0 < report["flash_kib"] < 120.0
        assert report["ram_kib"] < 64.0

    def test_ram_includes_persistent_state(self, qmodel):
        qm, _ = qmodel
        ram = ram_footprint(qm)
        assert ram["persistent_bytes"] > 0
        assert ram["total_bytes"] == (ram["arena_bytes"]
                                      + ram["persistent_bytes"])


class TestLatencyModel:
    def test_latency_positive_and_millisecond_scale(self, qmodel):
        qm, _ = qmodel
        latency = estimate_latency(qm)
        assert 0.01 < latency["total_ms"] < 50.0
        assert len(latency["per_op"]) == len(qm.ops)

    def test_latency_monotonic_in_window_size(self):
        rng = np.random.default_rng(0)
        totals = []
        for window in (20, 30, 40):
            model = build_lightweight_cnn(window, seed=1)
            model.compile("adam", "bce")
            x = rng.normal(size=(60, window, 9)).astype(np.float32)
            qm = QuantizedModel.convert(model, x)
            totals.append(estimate_latency(qm)["total_ms"])
        assert totals[0] < totals[1] < totals[2]

    def test_slower_clock_increases_latency(self, qmodel):
        qm, _ = qmodel
        fast = estimate_latency(qm, CortexM7Config(clock_hz=216e6))
        slow = estimate_latency(qm, CortexM7Config(clock_hz=72e6))
        assert slow["total_ms"] == pytest.approx(fast["total_ms"] * 3, rel=1e-6)

    def test_device_constants(self):
        assert STM32F722["flash_bytes"] == 256 * 1024
        assert STM32F722["ram_bytes"] == 256 * 1024


@pytest.mark.skipif(shutil.which("cc") is None, reason="no C compiler")
class TestCodegen:
    def test_generated_c_matches_python_bit_for_bit(self, qmodel, tmp_path):
        qm, x = qmodel
        test_x = x[200:216]
        source = generate_c_source(qm, include_main=True, test_input=test_x)
        c_file = tmp_path / "model.c"
        c_file.write_text(source)
        binary = tmp_path / "model"
        subprocess.run(
            ["cc", "-O2", "-std=c99", "-o", str(binary), str(c_file), "-lm"],
            check=True, capture_output=True,
        )
        out = subprocess.run([str(binary)], check=True, capture_output=True,
                             text=True).stdout.split()
        c_probs = np.array([float(v) for v in out])
        py_probs = qm.predict(test_x).reshape(-1)
        np.testing.assert_allclose(c_probs, py_probs, atol=1e-5)

    def test_source_contains_all_weight_tables(self, qmodel):
        qm, _ = qmodel
        source = generate_c_source(qm)
        for op in qm.ops:
            if op.kind in ("conv1d", "dense"):
                assert f"w_{op.name}" in source
                assert f"m0_{op.name}" in source

    def test_main_requires_test_input(self, qmodel):
        qm, _ = qmodel
        with pytest.raises(ValueError, match="test_input"):
            generate_c_source(qm, include_main=True)
