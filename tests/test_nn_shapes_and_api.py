"""Shape algebra, graph validation and the Model API surface."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.layers.conv import conv1d_output_length


# ---------------------------------------------------------------------------
# Shape computations
# ---------------------------------------------------------------------------
class TestConvShapes:
    @given(
        length=st.integers(4, 200),
        kernel=st.integers(1, 4),
        stride=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_valid_output_length_matches_forward(self, length, kernel, stride):
        out_len = conv1d_output_length(length, kernel, stride, "valid")
        layer = nn.layers.Conv1D(2, kernel, strides=stride, seed=0)
        node = layer(nn.Input((length, 3)))
        assert node.shape == (out_len, 2)
        y = layer.forward([np.zeros((1, length, 3), dtype=np.float32)])
        assert y.shape == (1, out_len, 2)

    @given(
        length=st.integers(4, 200),
        kernel=st.integers(1, 6),
        stride=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_output_length_is_ceil_div(self, length, kernel, stride):
        out_len = conv1d_output_length(length, kernel, stride, "same")
        assert out_len == -(-length // stride)
        layer = nn.layers.Conv1D(2, kernel, strides=stride, padding="same",
                                 seed=0)
        node = layer(nn.Input((length, 3)))
        y = layer.forward([np.zeros((1, length, 3), dtype=np.float32)])
        assert y.shape[1] == out_len == node.shape[0]

    def test_kernel_longer_than_input_rejected(self):
        with pytest.raises(ValueError, match="shorter than kernel"):
            conv1d_output_length(3, 5, 1, "valid")

    def test_bad_padding_rejected(self):
        with pytest.raises(ValueError, match="padding"):
            conv1d_output_length(10, 3, 1, "full")


class TestPoolingShapes:
    @given(length=st.integers(4, 100), pool=st.integers(1, 4),
           stride=st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_maxpool_output_length(self, length, pool, stride):
        if length < pool:
            return
        layer = nn.layers.MaxPool1D(pool, strides=stride)
        node = layer(nn.Input((length, 2)))
        expected = (length - pool) // stride + 1
        assert node.shape == (expected, 2)
        y = layer.forward([np.zeros((3, length, 2), dtype=np.float32)])
        assert y.shape == (3, expected, 2)

    def test_pool_larger_than_input_rejected(self):
        with pytest.raises(ValueError, match="shorter than pool_size"):
            nn.layers.MaxPool1D(8)(nn.Input((4, 2)))


class TestSliceShapes:
    def test_slice_shape_and_bounds(self):
        node = nn.layers.Slice(-1, 3, 6)(nn.Input((10, 9)))
        assert node.shape == (10, 6 - 3)

    def test_slice_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            nn.layers.Slice(-1, 5, 12)(nn.Input((10, 9)))

    def test_empty_slice_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            nn.layers.Slice(-1, 4, 4)

    def test_positive_axis_indexing(self):
        node = nn.layers.Slice(0, 2, 7)(nn.Input((10, 9)))
        assert node.shape == (5, 9)


class TestMergeValidation:
    def test_concatenate_requires_two_inputs(self):
        with pytest.raises(ValueError, match="at least two"):
            nn.layers.Concatenate()([nn.Input((4,))])

    def test_concatenate_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nn.layers.Concatenate()([nn.Input((4, 2)), nn.Input((4,))])

    def test_concatenate_axis_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="must match"):
            nn.layers.Concatenate(axis=-1)([nn.Input((4, 2)), nn.Input((5, 2))])

    def test_add_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share a shape"):
            nn.layers.Add()([nn.Input((4,)), nn.Input((5,))])

    def test_concatenate_shape(self):
        node = nn.layers.Concatenate()([nn.Input((7, 3)), nn.Input((7, 5))])
        assert node.shape == (7, 8)


class TestReshape:
    def test_reshape_element_count_mismatch(self):
        with pytest.raises(ValueError, match="cannot reshape"):
            nn.layers.Reshape((5, 3))(nn.Input((12,)))

    def test_reshape_round_trip(self):
        layer = nn.layers.Reshape((3, 4))
        layer(nn.Input((12,)))
        x = np.arange(24, dtype=np.float32).reshape(2, 12)
        y = layer.forward([x])
        assert y.shape == (2, 3, 4)
        back = layer.backward(y)[0]
        np.testing.assert_array_equal(back, x)


# ---------------------------------------------------------------------------
# Layer call rules
# ---------------------------------------------------------------------------
class TestLayerWiring:
    def test_layer_cannot_be_reused(self):
        layer = nn.layers.Dense(3, seed=0)
        layer(nn.Input((4,)))
        with pytest.raises(RuntimeError, match="already wired"):
            layer(nn.Input((4,)))

    def test_layer_requires_nodes(self):
        with pytest.raises(TypeError, match="graph nodes"):
            nn.layers.Dense(3)(np.zeros((2, 4)))

    def test_unique_auto_names(self):
        a = nn.layers.Dense(2)
        b = nn.layers.Dense(2)
        assert a.name != b.name

    def test_input_validation(self):
        with pytest.raises(ValueError, match="positive"):
            nn.Input((0, 3))


# ---------------------------------------------------------------------------
# Model API
# ---------------------------------------------------------------------------
def _small_model(seed=0):
    inp = nn.Input((6, 9))
    h = nn.layers.Conv1D(4, 3, activation="relu", seed=seed)(inp)
    h = nn.layers.Flatten()(h)
    out = nn.layers.Dense(1, activation="sigmoid", seed=seed + 1)(h)
    return nn.Model(inp, out)


class TestModel:
    def test_predict_batching_is_consistent(self):
        model = _small_model()
        x = np.random.default_rng(0).normal(size=(23, 6, 9)).astype(np.float32)
        full = model.predict(x, batch_size=23)
        chunked = model.predict(x, batch_size=5)
        np.testing.assert_allclose(full, chunked, rtol=1e-6)

    def test_predict_rejects_wrong_shape(self):
        model = _small_model()
        with pytest.raises(ValueError, match="per-sample shape"):
            model.predict(np.zeros((4, 5, 9)))

    def test_count_params_matches_manual(self):
        model = _small_model()
        conv = 3 * 9 * 4 + 4
        dense = (4 * 4) * 1 + 1
        assert model.count_params() == conv + dense

    def test_get_set_weights_round_trip(self):
        model = _small_model(seed=1)
        other = _small_model(seed=99)
        x = np.random.default_rng(0).normal(size=(4, 6, 9)).astype(np.float32)
        assert not np.allclose(model.predict(x), other.predict(x))
        other.set_weights(model.get_weights())
        np.testing.assert_allclose(model.predict(x), other.predict(x),
                                   rtol=1e-6)

    def test_set_weights_shape_mismatch_rejected(self):
        model = _small_model()
        weights = model.get_weights()
        weights[0] = weights[0][:-1]
        with pytest.raises(ValueError, match="shape mismatch"):
            model.set_weights(weights)

    def test_set_weights_count_mismatch_rejected(self):
        model = _small_model()
        with pytest.raises(ValueError, match="weight arrays"):
            model.set_weights(model.get_weights()[:-1])

    def test_uncompiled_training_rejected(self):
        model = _small_model()
        with pytest.raises(RuntimeError, match="compile"):
            model.fit(np.zeros((2, 6, 9)), np.zeros((2, 1)))

    def test_summary_mentions_every_layer(self):
        model = _small_model()
        text = model.summary()
        for layer in model.layers:
            assert layer.name in text
        assert "total params" in text

    def test_get_layer(self):
        model = _small_model()
        name = model.layers[0].name
        assert model.get_layer(name) is model.layers[0]
        with pytest.raises(KeyError):
            model.get_layer("nope")

    def test_model_requires_connected_graph(self):
        inp = nn.Input((4,))
        other = nn.Input((4,))
        out = nn.layers.Dense(2, seed=0)(other)
        with pytest.raises(ValueError):
            nn.Model(inp, out)

    def test_foreign_input_rejected(self):
        inp = nn.Input((4,))
        other = nn.Input((4,))
        a = nn.layers.Dense(2, seed=0)(inp)
        b = nn.layers.Dense(2, seed=1)(other)
        out = nn.layers.Concatenate()([a, b])
        with pytest.raises(ValueError, match="foreign input"):
            nn.Model(inp, out)

    def test_fit_empty_dataset_rejected(self):
        model = _small_model().compile("adam", "bce")
        with pytest.raises(ValueError, match="empty"):
            model.fit(np.zeros((0, 6, 9)), np.zeros((0, 1)))

    def test_fit_length_mismatch_rejected(self):
        model = _small_model().compile("adam", "bce")
        with pytest.raises(ValueError, match="disagree"):
            model.fit(np.zeros((4, 6, 9)), np.zeros((3, 1)))

    def test_fit_returns_history_and_respects_epochs(self):
        model = _small_model().compile("adam", "bce")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 6, 9)).astype(np.float32)
        y = rng.integers(0, 2, size=(32, 1)).astype(float)
        history = model.fit(x, y, epochs=3, batch_size=8, seed=0)
        assert history.epochs == [0, 1, 2]
        assert len(history.history["loss"]) == 3

    def test_fit_deterministic_under_seed(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 6, 9)).astype(np.float32)
        y = rng.integers(0, 2, size=(40, 1)).astype(float)
        losses = []
        for _ in range(2):
            model = _small_model(seed=5).compile(
                nn.optimizers.Adam(learning_rate=1e-3), "bce"
            )
            h = model.fit(x, y, epochs=2, batch_size=8, seed=123)
            losses.append(h.history["loss"])
        np.testing.assert_allclose(losses[0], losses[1], rtol=1e-6)

    def test_class_weight_changes_training(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 6, 9)).astype(np.float32)
        y = rng.integers(0, 2, size=(40, 1)).astype(float)

        def run(cw):
            model = _small_model(seed=5).compile(
                nn.optimizers.SGD(learning_rate=0.1), "bce"
            )
            h = model.fit(x, y, epochs=1, batch_size=40, shuffle=False,
                          class_weight=cw, seed=0)
            return h.history["loss"][0]

        assert run({0: 1.0, 1: 1.0}) != run({0: 1.0, 1: 10.0})

    def test_evaluate_reports_metrics(self):
        model = _small_model().compile("adam", "bce", metrics=["binary_accuracy"])
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 6, 9)).astype(np.float32)
        y = rng.integers(0, 2, size=(16, 1)).astype(float)
        logs = model.evaluate(x, y)
        assert set(logs) >= {"loss", "binary_accuracy"}
        assert 0.0 <= logs["binary_accuracy"] <= 1.0


class TestPredictEdgeCases:
    def test_predict_empty_input_keeps_output_shape(self):
        """Regression: empty input used to return shape (0,) instead of
        (0,) + output_shape, breaking downstream reshapes/concats."""
        model = _small_model()
        out = model.predict(np.zeros((0, 6, 9), dtype=np.float32))
        assert out.shape == (0, 1)
        assert out.dtype == nn.floatx()
        # The shape fix is what lets callers flatten uniformly.
        assert out.reshape(-1).shape == (0,)

    def test_batch_invariant_rows_are_batch_independent(self):
        """Under nn.batch_invariant, a sample's prediction is bitwise
        identical no matter which other samples share its batch."""
        model = _small_model()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(17, 6, 9)).astype(np.float32)
        with nn.batch_invariant():
            assert nn.batch_invariant_enabled()
            full = model.predict(x)
            singles = np.concatenate([model.predict(x[i:i + 1])
                                      for i in range(len(x))])
            prefix = model.predict(x[:5])
        assert np.array_equal(full, singles)
        assert np.array_equal(full[:5], prefix)
        assert not nn.batch_invariant_enabled()

    def test_batch_invariant_matches_default_kernels_closely(self):
        model = _small_model()
        x = np.random.default_rng(4).normal(size=(8, 6, 9)).astype(np.float32)
        with nn.batch_invariant():
            invariant = model.predict(x)
        default = model.predict(x)
        np.testing.assert_allclose(invariant, default, rtol=1e-5, atol=1e-6)
