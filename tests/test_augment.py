"""Time-warping / window-warping augmentation properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.augment import jitter, scale, time_warp, window_warp


def _segment(n=40, channels=9, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 100.0
    base = np.sin(2 * np.pi * 2.0 * t)[:, None]
    return (base + 0.1 * rng.normal(size=(n, channels))).astype(float)


class TestTimeWarp:
    def test_preserves_shape(self):
        x = _segment()
        out = time_warp(x, np.random.default_rng(0))
        assert out.shape == x.shape

    def test_changes_the_signal(self):
        x = _segment()
        out = time_warp(x, np.random.default_rng(0), sigma=0.3)
        assert not np.allclose(out, x)

    def test_preserves_endpoints(self):
        # The warp path is pinned to [0, n-1]: first/last samples survive.
        x = _segment()
        out = time_warp(x, np.random.default_rng(1))
        np.testing.assert_allclose(out[0], x[0], atol=1e-9)
        np.testing.assert_allclose(out[-1], x[-1], atol=1e-9)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_stays_within_original_range(self, seed):
        # Linear interpolation cannot overshoot the data envelope.
        x = _segment(seed=seed)
        out = time_warp(x, np.random.default_rng(seed))
        assert out.min() >= x.min() - 1e-9
        assert out.max() <= x.max() + 1e-9

    def test_deterministic_given_rng_state(self):
        x = _segment()
        a = time_warp(x, np.random.default_rng(7))
        b = time_warp(x, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_parameter_validation(self):
        x = _segment()
        with pytest.raises(ValueError):
            time_warp(x, np.random.default_rng(0), sigma=0.0)
        with pytest.raises(ValueError):
            time_warp(x, np.random.default_rng(0), knots=1)
        with pytest.raises(ValueError):
            time_warp(np.zeros((2, 3)), np.random.default_rng(0))
        with pytest.raises(ValueError):
            time_warp(np.zeros(40), np.random.default_rng(0))


class TestWindowWarp:
    def test_preserves_shape(self):
        x = _segment()
        out = window_warp(x, np.random.default_rng(0))
        assert out.shape == x.shape

    def test_changes_the_signal(self):
        x = _segment()
        out = window_warp(x, np.random.default_rng(0))
        assert not np.allclose(out, x)

    @given(seed=st.integers(0, 500),
           ratio=st.floats(0.1, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_range_bounded(self, seed, ratio):
        x = _segment(seed=seed)
        out = window_warp(x, np.random.default_rng(seed), window_ratio=ratio)
        assert out.min() >= x.min() - 1e-9
        assert out.max() <= x.max() + 1e-9

    def test_scale_factors_validated(self):
        x = _segment()
        with pytest.raises(ValueError):
            window_warp(x, np.random.default_rng(0), scales=(0.0,))
        with pytest.raises(ValueError):
            window_warp(x, np.random.default_rng(0), window_ratio=1.0)


class TestExtras:
    def test_jitter_adds_noise(self):
        x = _segment()
        out = jitter(x, np.random.default_rng(0), sigma=0.05)
        assert out.shape == x.shape
        assert 0.0 < np.abs(out - x).mean() < 0.2

    def test_scale_multiplies_channels(self):
        x = np.ones((20, 3))
        out = scale(x, np.random.default_rng(0), sigma=0.2)
        # One factor per channel, constant along time.
        assert np.allclose(out.std(axis=0), 0.0)
        assert not np.allclose(out.mean(axis=0), 1.0)
