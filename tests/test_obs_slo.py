"""SLO engine: stage attribution, burn-rate alerting, fleet surfacing.

Covers the three layers of ``repro.obs.slo``: the :class:`StageTimer`
attribution contract (stage sums ≡ end-to-end, both serving paths, and
instrumentation that cannot perturb the block bit-identity gate), the
:class:`SLOTracker` burn-rate rules riding a real ``AlertManager`` on
synthetic stream time, and the serving-engine surfacing
(``slo_report``/``fleet_stages``/liveness counters) plus the
``repro slo`` eval harness's synthetic-overload fast-burn page.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.alerts import AlertConfig, AlertManager
from repro.core.detector import DetectorConfig, FallDetector
from repro.experiments import SLOEvalConfig, run_slo_eval
from repro.experiments.alerts_runner import MagnitudeProbeModel
from repro.obs import (
    STAGES,
    BurnRateRule,
    MetricsSampler,
    SLOConfig,
    SLOTracker,
    StageTimer,
    metric_to_family,
    stage_attribution,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeConfig, ServeEngine
from repro.serve.bench import ServeBenchConfig, synth_stream

CFG = DetectorConfig(window_ms=200.0, overlap=0.5, threshold=0.4,
                     consecutive_required=1)


def _stream(duration_s=3.0, index=0):
    bench = ServeBenchConfig(n_streams=1, duration_s=duration_s,
                             detector=CFG)
    return synth_stream(index, bench)


def _tight_slo() -> SLOConfig:
    """Burn windows in stream-seconds so tests never sleep."""
    return SLOConfig(
        fast_burn=BurnRateRule(name="fast_burn", short_window_s=1.0,
                               long_window_s=3.0, threshold=14.4,
                               severity="critical"),
        slow_burn=BurnRateRule(name="slow_burn", short_window_s=2.0,
                               long_window_s=5.0, threshold=6.0,
                               severity="suspect"),
        budget_window_s=30.0,
        bucket_s=0.25,
    )


class _TickClock:
    """``perf_counter`` stand-in: each read advances a fixed step."""

    def __init__(self, step_s=0.001):
        self.step_s = step_s
        self._now = 0.0

    def __call__(self):
        self._now += self.step_s
        return self._now


# ----------------------------------------------------------------------
# StageTimer
# ----------------------------------------------------------------------
def test_stage_timer_flush_observes_stage_sum_into_e2e():
    timer = StageTimer(clock=lambda: 0.0)
    timer.add("ingest", 0.002)             # 2 ms, paired-clock seconds
    timer.add_ms("inference", 3.5)
    assert timer.pending_ms("inference") == pytest.approx(3.5)
    total = timer.flush()
    assert total == pytest.approx(5.5)
    assert timer.windows == 1
    assert timer.e2e.summary()["mean"] == pytest.approx(5.5)
    assert all(timer.pending_ms(stage) == 0.0 for stage in STAGES)
    # discard_pending drops an open window without observing it
    timer.add_ms("filter", 1.0)
    timer.discard_pending()
    assert timer.windows == 1
    assert timer.totals_ms["filter"] == 0.0


def _drive_detector(use_block, accel, gyro, t):
    model = MagnitudeProbeModel()
    detector = FallDetector(model, CFG, registry=MetricsRegistry(),
                            stage_clock=_TickClock())
    hop = CFG.hop_samples
    for start in range(0, len(accel), hop):
        sl = slice(start, start + hop)
        if use_block:
            _, requests = detector.push_block(accel[sl], gyro[sl], t[sl])
        else:
            requests = []
            for i in range(start, min(start + hop, len(accel))):
                _, reqs = detector.push_collect(accel[i], gyro[i],
                                                float(t[i]))
                requests.extend(reqs)
        for req in requests:
            prob = float(np.asarray(
                model.predict(req.window[None])).reshape(-1)[0])
            detector.complete(req, prob, latency_ms=0.5)
    return detector


@pytest.mark.parametrize("use_block", [False, True])
def test_stage_timings_nonnegative_and_sum_to_e2e(use_block):
    """The property pair: every stage cost is finite and non-negative,
    and the flushed stage totals sum to the end-to-end total exactly
    (modulo float addition order) — on both serving paths."""
    accel, gyro, t = _stream()
    detector = _drive_detector(use_block, accel, gyro, t)
    timer = detector.stages
    report = detector.stage_report()
    assert report["windows"] > 0
    for stage in STAGES:
        stats = report["stages"][stage]
        assert np.isfinite(stats["mean"]) and stats["mean"] >= 0.0
        assert timer.totals_ms[stage] >= 0.0
        assert timer.histograms[stage].count == report["windows"]
    e2e_total = report["e2e"]["mean"] * report["windows"]
    assert sum(timer.totals_ms.values()) == pytest.approx(e2e_total,
                                                          rel=1e-9)
    # inference was charged through complete()'s latency_ms
    assert timer.totals_ms["inference"] == pytest.approx(
        0.5 * report["windows"])


def test_stage_timer_merge_is_fleet_rollup():
    a, b = StageTimer(clock=lambda: 0.0), StageTimer(clock=lambda: 0.0)
    a.add_ms("filter", 2.0)
    a.flush()
    b.add_ms("filter", 4.0)
    b.flush()
    a.merge(b)
    assert a.windows == 2
    assert a.totals_ms["filter"] == pytest.approx(6.0)
    assert a.e2e.summary()["mean"] == pytest.approx(3.0)


def test_stage_attribution_shares():
    timer = StageTimer(clock=lambda: 0.0)
    timer.add_ms("filter", 30.0)
    timer.add_ms("inference", 60.0)
    timer.flush()
    rows = stage_attribution(timer.report(), budget_ms=150.0)
    by = {row["stage"]: row for row in rows}
    assert by["inference"]["share_of_budget"] == pytest.approx(0.4)
    assert by["filter"]["share_of_e2e"] == pytest.approx(1 / 3)
    assert sum(row["share_of_e2e"] for row in rows) == pytest.approx(1.0)


def _run_identity_arm(cfg, use_block, accel, gyro, t):
    registry = MetricsRegistry()
    model = MagnitudeProbeModel()
    detector = FallDetector(model, cfg, registry=registry)
    trace = []
    hop = cfg.hop_samples
    for start in range(0, len(accel), hop):
        sl = slice(start, start + hop)
        if use_block:
            hits, requests = detector.push_block(accel[sl], gyro[sl], t[sl])
        else:
            hits, requests = [], []
            for i in range(start, min(start + hop, len(accel))):
                hit, reqs = detector.push_collect(accel[i], gyro[i],
                                                  float(t[i]))
                if hit is not None:
                    hits.append(hit)
                requests.extend(reqs)
        for req in requests:
            prob = float(np.asarray(
                model.predict(req.window[None])).reshape(-1)[0])
            hit = detector.complete(req, prob, latency_ms=0.5)
            if hit is not None:
                hits.append(hit)
        for h in hits:
            trace.append((h.sample_index, float(h.time_s),
                          float(h.probability), h.source))
    return trace, registry.snapshot()


def test_stage_timing_leaves_block_identity_untouched():
    """The regression the off-registry design buys: enabling stage
    timing changes neither the observable trace nor the registry
    snapshot, on either path — so the bit-identity gate stays green."""
    accel, gyro, t = _stream(duration_s=2.0)
    results = {}
    for timing in (False, True):
        cfg = replace(CFG, stage_timing=timing)
        results[timing] = {
            use_block: _run_identity_arm(cfg, use_block, accel, gyro, t)
            for use_block in (False, True)
        }
    for timing in (False, True):
        assert results[timing][False] == results[timing][True]
    assert results[True] == results[False]


# ----------------------------------------------------------------------
# SLOTracker + AlertManager
# ----------------------------------------------------------------------
def test_fast_burn_pages_critical_through_alert_manager_then_resolves():
    registry = MetricsRegistry()
    manager = AlertManager(AlertConfig(), registry=registry)
    tracker = SLOTracker(_tight_slo(), registry=registry, alerts=manager)
    # 100% of windows over the 150 ms budget: burn rate 1/0.01 = 100x.
    for i in range(20):
        tracker.record(latency_ms=500.0, deadline_miss=False, now=0.1 * i)
    transitions = tracker.evaluate(now=2.0)
    subjects = {t["subject"] for t in transitions if t["burning"]}
    assert "slo/window_latency_p99/fast_burn" in subjects
    assert tracker.alerts_raised >= 1
    active = {a.stream: a for a in manager.active_alerts()}
    alert = active["slo/window_latency_p99/fast_burn"]
    assert alert.severity == "critical" and alert.source == "slo"
    # The burn subsides once the windows age out; the tracker (not the
    # escalation machinery) resolves its own direct alerts.
    tracker.record(latency_ms=1.0, deadline_miss=False, now=40.0)
    tracker.evaluate(now=40.0)
    assert tracker.alerts_resolved >= 1
    assert not any(a.stream.startswith("slo/")
                   for a in manager.active_alerts())


def test_burn_needs_both_windows_and_min_events():
    tracker = SLOTracker(_tight_slo())
    # 100% bad but below min_events: silent.
    for i in range(5):
        tracker.record(latency_ms=500.0, deadline_miss=True, now=0.1 * i)
    assert tracker.evaluate(now=1.0) == []
    report = tracker.report(now=1.0)
    assert report["objectives"]["window_latency_p99"]["bad"] == 5
    # Enough good events dilute the long window below threshold while the
    # short window still burns: still silent (both windows must burn).
    tracker = SLOTracker(_tight_slo())
    for i in range(200):
        tracker.record(latency_ms=1.0, deadline_miss=False,
                       now=0.01 * i)                      # good: t in [0,2)
    for i in range(4):
        tracker.record(latency_ms=500.0, deadline_miss=False,
                       now=2.2 + 0.1 * i)                 # bad burst at end
    assert tracker.evaluate(now=2.6) == []


def test_slo_counters_roll_up_through_registry():
    registry = MetricsRegistry()
    tracker = SLOTracker(_tight_slo(), registry=registry)
    tracker.record(latency_ms=200.0, deadline_miss=True, n=3, now=0.0)
    tracker.record(latency_ms=1.0, deadline_miss=False, n=2, now=0.1)
    assert registry.counter("slo/window_latency_p99/events").value == 5
    assert registry.counter("slo/window_latency_p99/bad").value == 3
    assert registry.counter("slo/deadline_miss/events").value == 5
    assert registry.counter("slo/deadline_miss/bad").value == 3
    # merge_entries is the fleet rollup: counters add.
    front = MetricsRegistry()
    front.merge_entries(registry.entries())
    front.merge_entries(registry.entries())
    assert front.counter("slo/window_latency_p99/bad").value == 6


def test_tracker_reads_injected_clock_when_now_omitted():
    tracker = SLOTracker(_tight_slo(), clock=lambda: 5.0)
    tracker.record(latency_ms=500.0, deadline_miss=False)
    report = tracker.report()
    assert report["objectives"]["window_latency_p99"]["events"] == 1
    assert report["objectives"]["window_latency_p99"]["bad"] == 1


def test_metric_to_family_folds_stage_and_slo_namespaces():
    assert metric_to_family("serve/stage/filter/latency_ms") == (
        "repro_serve_stage_latency_ms", {"stage": "filter"})
    assert metric_to_family("slo/deadline_miss/events") == (
        "repro_slo_events", {"slo": "deadline_miss"})


def test_sampler_clock_injection_and_wait():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    ticks = iter([0.0, 0.5, 1.0])
    sampler = MetricsSampler(registry, interval_s=1.0,
                             clock=lambda: next(ticks))
    sampler.sample()                       # reads 0.0
    assert sampler.maybe_sample() is None  # 0.5: cadence not due
    assert sampler.maybe_sample() is not None  # 1.0: due
    assert sampler.wait_for_samples(2, timeout=0)
    assert not sampler.wait_for_samples(3, timeout=0)


# ----------------------------------------------------------------------
# engine surfacing + eval harness
# ----------------------------------------------------------------------
def test_engine_slo_report_attribution_and_liveness():
    engine = ServeEngine(
        MagnitudeProbeModel(),
        ServeConfig(detector=CFG, slo=_tight_slo()),
        registry=MetricsRegistry(),
    )
    accel, gyro, t = _stream(duration_s=2.0)
    hop = CFG.hop_samples
    for i in range(len(accel)):
        engine.submit("s000", accel[i], gyro[i], float(t[i]))
        if (i + 1) % hop == 0:
            engine.step()
    engine.step()
    assert engine.rounds > 0
    assert engine.last_round_t is not None
    report = engine.slo_report()
    assert report["objectives"]["window_latency_p99"]["events"] > 0
    rows = report["attribution"]
    assert sum(row["share_of_e2e"] for row in rows) == pytest.approx(1.0)
    stages = engine.fleet_stages()
    assert stages.windows == report["stages"]["windows"] > 0
    assert report["latency_budget_ms"] == pytest.approx(150.0)


def test_engine_slo_disabled_by_config_none():
    engine = ServeEngine(MagnitudeProbeModel(),
                         ServeConfig(detector=CFG, slo=None),
                         registry=MetricsRegistry())
    assert engine.slo is None
    assert engine.slo_report() is None
    accel, gyro, t = _stream(duration_s=1.0)
    for i in range(len(accel)):
        engine.submit("s000", accel[i], gyro[i], float(t[i]))
    engine.step()
    assert engine.fleet_stages() is not None  # stage timing is separate


def test_slo_eval_overload_pages_fast_burn():
    """The acceptance criterion: the synthetic overload condition drives
    a fast-burn alert through the AlertManager; the clean fleet keeps
    its whole error budget."""
    config = SLOEvalConfig(n_streams=2, faulted_streams=0, duration_s=4.0)
    result = run_slo_eval(config, scenarios=[])
    clean = result["conditions"]["clean"]
    overload = result["conditions"]["overload"]
    assert clean["alerts_raised"] == 0 and clean["burning"] == []
    latency = clean["objectives"]["window_latency_p99"]
    assert latency["budget_remaining"] == pytest.approx(1.0)
    assert overload["fast_burn_alert"]
    assert overload["alerts_raised"] >= 1
    assert "slo/window_latency_p99/fast_burn" in overload["alert_subjects"]
    burned = overload["objectives"]["window_latency_p99"]
    assert burned["bad_fraction"] == pytest.approx(1.0)
    assert burned["budget_remaining"] < 0
    # attribution stays exact under overload too
    shares = sum(row["share_of_e2e"] for row in overload["attribution"])
    assert shares == pytest.approx(1.0)
