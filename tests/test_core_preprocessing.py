"""Preprocessing pipeline: filtering, segmentation, labels, provenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preprocessing import (
    PreprocessConfig,
    SegmentSet,
    build_segments,
    preprocess_recording,
)
from repro.datasets import LabelPolicy
from repro.datasets.subjects import make_subjects
from repro.datasets.synthesis.generator import synthesize_recording
from repro.datasets.tasks import TASKS


@pytest.fixture(scope="module")
def fall_recording():
    subject = make_subjects("PP", 1, seed=0)[0]
    return synthesize_recording(TASKS[30], subject, base_seed=1)


@pytest.fixture(scope="module")
def adl_recording():
    subject = make_subjects("PP", 1, seed=0)[0]
    return synthesize_recording(TASKS[6], subject, base_seed=1,
                                duration_scale=0.5)


class TestPreprocessRecording:
    def test_segment_shapes_follow_config(self, adl_recording):
        for window_ms, expected in ((200, 20), (300, 30), (400, 40)):
            segs = preprocess_recording(
                adl_recording, PreprocessConfig(window_ms=window_ms)
            )
            assert segs.X.shape[1:] == (expected, 9)
            assert segs.X.dtype == np.float32

    def test_adl_segments_all_negative(self, adl_recording):
        segs = preprocess_recording(adl_recording, PreprocessConfig())
        assert len(segs) > 0
        assert segs.y.sum() == 0
        assert segs.trigger_valid.all()
        assert not segs.event_is_fall.any()

    def test_fall_recording_has_positive_segments(self, fall_recording):
        segs = preprocess_recording(fall_recording, PreprocessConfig())
        assert segs.y.sum() > 0
        assert segs.event_is_fall.all()

    def test_excluded_zone_produces_no_segments(self, fall_recording):
        cfg = PreprocessConfig()
        segs = preprocess_recording(fall_recording, cfg)
        fs = fall_recording.fs
        window = cfg.window_samples
        stride = cfg.segmentation.stride_samples
        airbag = int(round(cfg.policy.airbag_ms * fs / 1000.0))
        exclude = int(round(cfg.policy.exclude_impact_ms * fs / 1000.0))
        lo = fall_recording.impact - airbag
        hi = fall_recording.impact + exclude
        # Reconstruct which windows were kept and verify none overlaps the
        # exclusion zone.
        kept = 0
        for s in range(0, fall_recording.n_samples - window + 1, stride):
            if s + window <= lo or s >= hi:
                kept += 1
        assert len(segs) == kept

    def test_trigger_valid_marks_in_time_segments(self, fall_recording):
        cfg = PreprocessConfig()
        segs = preprocess_recording(fall_recording, cfg)
        # Every positive-labeled segment must be in-time by construction
        # (positives live inside [onset, impact - airbag)).
        assert segs.trigger_valid[segs.y == 1].all()
        # Post-fall segments exist and are not trigger-valid.
        assert (~segs.trigger_valid).any()

    def test_channel_scaling_applied(self, adl_recording):
        raw = preprocess_recording(
            adl_recording,
            PreprocessConfig(channel_scales=(1.0,) * 9),
        )
        scaled = preprocess_recording(adl_recording, PreprocessConfig())
        # Gyro channels divided by 100.
        ratio = (np.abs(raw.X[:, :, 3]).mean()
                 / max(np.abs(scaled.X[:, :, 3]).mean(), 1e-12))
        assert ratio == pytest.approx(100.0, rel=0.05)

    def test_wrong_scale_count_rejected(self, adl_recording):
        with pytest.raises(ValueError, match="channel_scales"):
            preprocess_recording(
                adl_recording, PreprocessConfig(channel_scales=(1.0, 2.0))
            )

    def test_unaligned_frame_rejected(self, tiny_kfall):
        with pytest.raises(ValueError, match="align"):
            preprocess_recording(tiny_kfall[0], PreprocessConfig())

    def test_no_truncation_policy_yields_more_positives(self, fall_recording):
        base = preprocess_recording(fall_recording, PreprocessConfig())
        raw = preprocess_recording(
            fall_recording,
            PreprocessConfig(policy=LabelPolicy(airbag_ms=0.0,
                                                exclude_impact_ms=0.0)),
        )
        assert raw.y.sum() > base.y.sum()


class TestSegmentSet:
    def test_select_and_by_subjects(self, tiny_segments):
        subjects = tiny_segments.subjects
        first = tiny_segments.by_subjects([subjects[0]])
        assert set(first.subject) == {subjects[0]}
        mask = tiny_segments.y == 1
        positives = tiny_segments.select(mask)
        assert (positives.y == 1).all()

    def test_concatenate_preserves_counts(self, tiny_segments):
        subjects = tiny_segments.subjects
        a = tiny_segments.by_subjects([subjects[0]])
        b = tiny_segments.by_subjects([subjects[1]])
        merged = SegmentSet.concatenate([a, b])
        assert len(merged) == len(a) + len(b)
        assert merged.n_positive == a.n_positive + b.n_positive

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            SegmentSet.concatenate([])

    def test_length_consistency_enforced(self, tiny_segments):
        with pytest.raises(ValueError, match="length"):
            SegmentSet(
                X=tiny_segments.X,
                y=tiny_segments.y[:-1],
                subject=tiny_segments.subject,
                task_id=tiny_segments.task_id,
                event_id=tiny_segments.event_id,
                event_is_fall=tiny_segments.event_is_fall,
                trigger_valid=tiny_segments.trigger_valid,
            )

    def test_class_summary_reports_imbalance(self, tiny_segments):
        summary = tiny_segments.class_summary()
        assert summary["segments"] == len(tiny_segments)
        assert summary["falling"] + summary["non_falling"] == summary["segments"]
        # Falls are the rare class, like the paper's 3.6 %.
        assert summary["falling_fraction"] < 0.2

    def test_build_segments_aggregates_recordings(self, tiny_selfcollected):
        segs = build_segments(list(tiny_selfcollected)[:10], PreprocessConfig())
        assert len(set(segs.event_id)) == 10
