"""CLI: argument parsing and the fast commands end to end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_dataset


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "table3"])

    def test_table3_windows_parsed(self):
        args = build_parser().parse_args(
            ["table3", "--windows", "200", "400"]
        )
        assert args.windows == [200.0, 400.0]

    def test_figure1_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.task == 30 and args.seed == 42

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.deadline_ms is None
        assert args.epochs == 4
        assert not args.layer_timing
        assert args.verbose == 0

    def test_verbose_is_repeatable(self):
        args = build_parser().parse_args(["-vv", "profile"])
        assert args.verbose == 2


class TestFastCommands:
    def test_figure1_prints_anatomy(self, capsys):
        assert main(["figure1", "--task", "30"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 anatomy" in out
        assert "falling_withheld_150ms" in out

    def test_table1_runs_at_quick_scale(self, capsys):
        assert main(["--scale", "quick", "table1"]) == 0
        out = capsys.readouterr().out
        assert "VerticalVelocityDetector" in out
        assert "ImpactEnergyDetector" in out

    def test_profile_prints_span_tree_and_latency(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = main(["--scale", "quick", "profile", "--epochs", "1",
                     "--trace-out", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        # Span tree with the pipeline/training/streaming stages.
        assert "Span tree" in out
        assert "pipeline/build_kfall" in out
        assert "trainer/fit" in out
        assert "stream" in out
        # Latency histogram summary + deadline accounting.
        assert "latency p50" in out
        assert "latency p99" in out
        assert "deadline violations" in out
        assert "Airbag margin (150 ms budget)" in out
        # Exported trace is loadable.
        from repro.obs import load_jsonl

        records = load_jsonl(trace_path)
        assert any(r.name == "trainer/fit" for r in records)
        # Tracing must be switched back off afterwards.
        from repro.obs import tracing_enabled

        assert not tracing_enabled()

    def test_dataset_command_writes_loadable_snapshot(self, tmp_path, capsys):
        out_path = tmp_path / "corpus.npz"
        code = main([
            "dataset", "--out", str(out_path), "--subjects", "1",
            "--duration-scale", "0.3",
        ])
        assert code == 0
        dataset = load_dataset(out_path)
        assert len(dataset) > 0
        assert "wrote" in capsys.readouterr().out
