"""CLI: argument parsing and the fast commands end to end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_dataset


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "table3"])

    def test_table3_windows_parsed(self):
        args = build_parser().parse_args(
            ["table3", "--windows", "200", "400"]
        )
        assert args.windows == [200.0, 400.0]

    def test_figure1_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.task == 30 and args.seed == 42


class TestFastCommands:
    def test_figure1_prints_anatomy(self, capsys):
        assert main(["figure1", "--task", "30"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 anatomy" in out
        assert "falling_withheld_150ms" in out

    def test_table1_runs_at_quick_scale(self, capsys):
        assert main(["--scale", "quick", "table1"]) == 0
        out = capsys.readouterr().out
        assert "VerticalVelocityDetector" in out
        assert "ImpactEnergyDetector" in out

    def test_dataset_command_writes_loadable_snapshot(self, tmp_path, capsys):
        out_path = tmp_path / "corpus.npz"
        code = main([
            "dataset", "--out", str(out_path), "--subjects", "1",
            "--duration-scale", "0.3",
        ])
        assert code == 0
        dataset = load_dataset(out_path)
        assert len(dataset) > 0
        assert "wrote" in capsys.readouterr().out
