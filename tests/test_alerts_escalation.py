"""Escalation state machine + alert manager: lifecycle, dedup, demotion,
fail-safety."""

from __future__ import annotations

import pytest

from repro.alerts import (
    AlertConfig,
    AlertManager,
    EscalationConfig,
    EscalationMachine,
)
from repro.obs.metrics import MetricsRegistry


def _cfg(**kw):
    base = dict(confirm_window_s=2.0, confirm_detections=2,
                auto_resolve_s=10.0)
    base.update(kw)
    return EscalationConfig(**base)


# ----------------------------------------------------------------------
# machine lifecycle
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError, match="confirm_window_s"):
        _cfg(confirm_window_s=0.0)
    with pytest.raises(ValueError, match="confirm_detections"):
        _cfg(confirm_detections=0)
    with pytest.raises(ValueError, match="auto_resolve_s"):
        _cfg(auto_resolve_s=-1.0)


def test_detection_then_confirmations_escalate():
    machine = EscalationMachine("s0", _cfg())
    moved = machine.observe_detection(1.0, probability=0.7)
    assert [(m["from"], m["to"]) for m in moved] == [("idle", "confirming")]
    assert machine.observe_detection(1.5, probability=0.9) == []
    moved = machine.observe_detection(2.0, probability=0.8)
    assert [(m["from"], m["to"], m["reason"]) for m in moved] == [
        ("confirming", "alert", "confirmed")]
    assert machine.state == "alert"
    assert machine.episode_detections == 3
    assert machine.episode_max_probability == 0.9


def test_single_spike_expires_without_alert():
    machine = EscalationMachine("s0", _cfg())
    machine.observe_detection(1.0)
    moved = machine.advance(3.5)               # past 1.0 + 2.0 window
    assert [(m["to"], m["reason"]) for m in moved] == [("idle", "expired")]
    assert machine.state == "idle"
    # A later detection starts a fresh episode.
    machine.observe_detection(10.0)
    assert machine.state == "confirming"
    assert machine.episode_detections == 1


def test_alert_auto_resolves_after_quiet_period():
    machine = EscalationMachine("s0", _cfg(confirm_detections=1))
    machine.observe_detection(1.0)
    machine.observe_detection(1.5)
    assert machine.state == "alert"
    assert machine.advance(11.0) == []         # 9.5 s quiet: not yet
    moved = machine.advance(11.5)
    assert [(m["to"], m["reason"]) for m in moved] == [
        ("idle", "auto_resolve")]


def test_detections_keep_alert_warm():
    machine = EscalationMachine("s0", _cfg(confirm_detections=1))
    machine.observe_detection(1.0)
    machine.observe_detection(1.5)
    machine.observe_detection(9.0)             # resets the resolve timer
    assert machine.advance(12.0) == []
    assert machine.state == "alert"


def test_ack_only_from_alert_state():
    machine = EscalationMachine("s0", _cfg(confirm_detections=1))
    assert machine.ack(0.0) == []              # idle: nothing to ack
    machine.observe_detection(1.0)
    assert machine.ack(1.1) == []              # confirming: nothing yet
    machine.observe_detection(1.5)
    moved = machine.ack(2.0)
    assert [(m["from"], m["to"]) for m in moved] == [("alert", "acked")]
    assert machine.ack(2.1) == []              # already acked
    # Acked still auto-resolves.
    moved = machine.advance(20.0)
    assert [(m["reason"]) for m in moved] == ["auto_resolve"]


def test_severity_demoted_by_worst_episode_health():
    machine = EscalationMachine("s0", _cfg(confirm_detections=1))
    machine.observe_detection(1.0, health="healthy")
    assert machine.severity == "critical"
    machine.observe_detection(1.5, health="degraded")
    assert machine.severity == "suspect"
    assert machine.worst_health == "degraded"
    # Health recovering does not un-demote the open episode...
    machine.observe_detection(2.0, health="healthy")
    assert machine.severity == "suspect"
    # ...but the next episode starts clean.
    machine.advance(50.0)
    machine.observe_detection(60.0, health="healthy")
    assert machine.severity == "critical"


# ----------------------------------------------------------------------
# manager: dedup, demotion, fail-safety
# ----------------------------------------------------------------------
def _manager(**alert_kw):
    alert_kw.setdefault("escalation", _cfg(confirm_detections=1,
                                           auto_resolve_s=2.0))
    alert_kw.setdefault("dedup_horizon_s", 5.0)
    registry = MetricsRegistry()
    return AlertManager(AlertConfig(**alert_kw), registry=registry), registry


def _escalate(manager, stream, t, **kw):
    manager.observe(stream, t=t, probability=0.9, **kw)
    manager.observe(stream, t=t + 0.2, probability=0.9, **kw)


def test_manager_raises_and_auto_resolves():
    manager, registry = _manager()
    _escalate(manager, "s0", 1.0)
    assert len(manager.active_alerts()) == 1
    alert = manager.active_alerts()[0]
    assert alert.severity == "critical" and alert.detections == 2
    assert registry.counter("alerts/raised").value == 1
    assert registry.gauge("alerts/active").value == 1.0
    manager.tick(5.0)                          # 3.8 s quiet > 2.0
    assert manager.active_alerts() == []
    assert manager.alerts[0].state == "resolved"
    assert registry.counter("alerts/resolved").value == 1


def test_manager_dedups_within_horizon():
    manager, registry = _manager()
    _escalate(manager, "s0", 1.0)
    manager.tick(4.0)                          # resolve the first alert
    _escalate(manager, "s0", 5.0)              # 1.0 s after last activity
    alerts = manager.alerts
    assert len(alerts) == 1                    # collapsed, not a new page
    assert alerts[0].repeats == 1
    assert alerts[0].state == "active"         # reactivated
    assert registry.counter("alerts/deduped").value == 1
    # Outside the horizon a fresh alert opens.
    manager.tick(30.0)
    _escalate(manager, "s0", 40.0)
    assert len(manager.alerts) == 2


def test_manager_demotes_degraded_stream_and_tightens_on_repeat():
    manager, _ = _manager()
    _escalate(manager, "s0", 1.0, health="degraded")
    alert = manager.alerts[0]
    assert alert.severity == "suspect"
    # A healthy-episode repeat inside the horizon upgrades to critical.
    manager.tick(4.0)
    _escalate(manager, "s0", 5.0, health="healthy")
    assert manager.alerts[0].severity == "critical"


def test_manager_single_spike_never_pages():
    manager, registry = _manager(
        escalation=_cfg(confirm_window_s=1.0, confirm_detections=1))
    manager.observe("s0", t=1.0)
    manager.tick(3.0)                          # confirm window expired
    assert manager.alerts == []
    assert registry.counter("alerts/expired").value == 1


def test_manager_prunes_resolved_first():
    manager, _ = _manager(max_alerts=2, dedup_horizon_s=0.0)
    for i, t in enumerate((1.0, 20.0, 40.0)):
        _escalate(manager, f"s{i}", t)
        manager.tick(t + 4.0)                  # resolve each
    assert len(manager.alerts) == 2
    assert {a.stream for a in manager.alerts} == {"s1", "s2"}


def test_manager_is_fail_safe(caplog):
    manager, registry = _manager()

    class BrokenRecorder:
        def mark(self, label):
            raise RuntimeError("recorder exploded")

    manager.observe("s0", t=1.0)
    # The second observe escalates -> _raise_alert -> recorder.mark boom.
    manager.observe("s0", t=1.2, recorder=BrokenRecorder())
    assert manager.errors == 1
    assert registry.counter("alerts/errors").value == 1
    # The pipeline keeps working afterwards.
    _escalate(manager, "s1", 2.0)
    assert any(a.stream == "s1" for a in manager.active_alerts())
    # Bad input types are contained too.
    manager.observe("s2", t="not a number")
    assert manager.errors == 2


def test_manager_ack_flow():
    manager, registry = _manager()
    _escalate(manager, "s0", 1.0)
    alert = manager.active_alerts()[0]
    assert manager.ack(alert.id, t=2.0) is True
    assert alert.state == "acked"
    assert manager.stream_state("s0") == "acked"
    assert registry.counter("alerts/acked").value == 1
    assert manager.ack(alert.id, t=2.1) is False    # not active anymore
    assert manager.ack("a-999999") is False          # unknown id
    report = manager.report()
    assert report["acked"] == 1 and report["active"] == 1


def test_manager_per_stream_gauge_optional():
    manager, registry = _manager(per_stream_metrics=False)
    _escalate(manager, "s0", 1.0)
    assert not any(name.startswith("alerts/stream/")
                   for name in registry.names())
    manager2, registry2 = _manager()
    _escalate(manager2, "s0", 1.0)
    assert registry2.gauge("alerts/stream/s0/state").value == 2.0
