"""``push_block`` ≡ ``push_collect`` — the bit-identity property suite.

The vectorized block-ingest path promises *bit-identical* results to the
per-sample deferred-inference loop (with completes deferred to the block
boundary).  These tests drive both paths over every builtin fault
scenario and random block splits and compare everything observable:
staged windows byte for byte, detections, health transitions, metric
counters, the ring buffer and the sample clock.  ``make check`` runs
this via ``make test`` — it is the identity gate for the serve fast
path.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, FallDetector
from repro.faults import builtin_scenarios
from repro.obs.metrics import MetricsRegistry
from repro.serve.bench import ServeBenchConfig, synth_stream

CFG = DetectorConfig(window_ms=200.0, overlap=0.5, threshold=0.4,
                     consecutive_required=1)


class _TanhModel:
    """Deterministic CNN stand-in: a pure function of the window bytes."""

    def predict(self, x):
        x = np.asarray(x)
        return (0.5 + 0.5 * np.tanh(4.0 * x.mean(axis=(1, 2))))[:, None]


def _base_stream(index=0, duration_s=4.0):
    bench = ServeBenchConfig(n_streams=1, duration_s=duration_s,
                             detector=CFG)
    return synth_stream(index, bench)


def _random_splits(n, rng, n_blocks=12):
    """Random interior cut points giving ~``n_blocks`` uneven blocks."""
    if n < 2:
        return []
    cuts = rng.choice(np.arange(1, n), size=min(n_blocks, n - 1),
                      replace=False)
    return sorted(int(c) for c in cuts)


def _drive(detector, model, accel, gyro, t, splits, *, use_block,
           latency_ms=0.5):
    """Feed the stream block by block; returns the observable trace.

    Both arms follow the deferred-inference protocol with completes at
    the block boundary — the contract ``push_block`` is specified
    against.  The loop arm converts the block API's NaN timestamp
    sentinel back to ``None`` for ``push_collect``.
    """
    trace = []
    start = 0
    for stop in list(splits) + [len(accel)]:
        if use_block:
            tb = None if t is None else t[start:stop]
            hits, requests = detector.push_block(
                accel[start:stop], gyro[start:stop], tb)
        else:
            hits, requests = [], []
            for i in range(start, stop):
                ti = None if t is None else float(t[i])
                if ti is not None and ti != ti:   # NaN -> no timestamp
                    ti = None
                hit, reqs = detector.push_collect(accel[i], gyro[i], ti)
                if hit is not None:
                    hits.append(hit)
                requests.extend(reqs)
        for req in requests:
            trace.append(("request", req.sample_index, float(req.time_s),
                          bool(req.fallback_hit), req.window.tobytes()))
            if model is not None:
                prob = float(np.asarray(
                    model.predict(req.window[None, :, :])).reshape(-1)[0])
                hit = detector.complete(req, prob, latency_ms=latency_ms)
                if hit is not None:
                    hits.append(hit)
        for h in hits:
            trace.append(("detection", h.sample_index, float(h.time_s),
                          float(h.probability), h.source))
        start = stop
    return trace


def _assert_identical(accel, gyro, t, splits, *, cfg=CFG, with_model=True,
                      latency_ms=0.5):
    arms = {}
    for use_block in (False, True):
        model = _TanhModel() if with_model else None
        registry = MetricsRegistry()
        detector = FallDetector(model, cfg, registry=registry)
        trace = _drive(detector, model, accel, gyro, t, splits,
                       use_block=use_block, latency_ms=latency_ms)
        arms[use_block] = (trace, detector, registry)
    trace_loop, det_loop, reg_loop = arms[False]
    trace_block, det_block, reg_block = arms[True]
    assert trace_block == trace_loop
    assert det_block.samples_seen == det_loop.samples_seen
    assert det_block.health_report() == det_loop.health_report()
    assert det_block.health_transitions == det_loop.health_transitions
    np.testing.assert_array_equal(det_block._buffer, det_loop._buffer)
    assert reg_block.snapshot() == reg_loop.snapshot()
    return trace_block


@pytest.mark.parametrize("name", sorted(builtin_scenarios()))
def test_block_matches_loop_on_every_builtin_scenario(name):
    accel, gyro, t = _base_stream(0)
    scenario = builtin_scenarios(seed=7)[name]
    t, accel, gyro = scenario.apply_arrays(t, accel, gyro)
    rng = np.random.default_rng(zlib.crc32(name.encode()))
    for trial in range(3):
        splits = _random_splits(len(accel), rng)
        _assert_identical(accel, gyro, t, splits)


def test_block_matches_loop_single_sample_blocks():
    """Degenerate split: every block holds exactly one sample."""
    accel, gyro, t = _base_stream(0, duration_s=2.0)
    splits = list(range(1, len(accel)))
    trace = _assert_identical(accel, gyro, t, splits)
    assert any(kind == "detection" for kind, *_ in trace)


def test_block_matches_loop_with_empty_blocks():
    """Repeated cut points make zero-length blocks; both arms no-op."""
    accel, gyro, t = _base_stream(0, duration_s=2.0)
    splits = [40, 40, 40, 95, 95, 180]
    _assert_identical(accel, gyro, t, splits)


def test_block_matches_loop_with_mixed_missing_timestamps():
    """NaN sentinel rows (block) ≡ ``t=None`` samples (loop)."""
    accel, gyro, t = _base_stream(0)
    t = t.copy()
    t[::7] = np.nan
    rng = np.random.default_rng(11)
    splits = _random_splits(len(accel), rng)
    _assert_identical(accel, gyro, t, splits)


def test_block_matches_loop_without_timestamps():
    accel, gyro, _ = _base_stream(3)
    rng = np.random.default_rng(12)
    splits = _random_splits(len(accel), rng)
    _assert_identical(accel, gyro, None, splits)


def test_block_matches_loop_without_model_fallback_only():
    accel, gyro, t = _base_stream(0)
    rng = np.random.default_rng(13)
    splits = _random_splits(len(accel), rng)
    trace = _assert_identical(accel, gyro, t, splits, with_model=False)
    assert all(kind != "request" for kind, *_ in trace)


def test_block_matches_loop_under_deadline_shedding():
    """Slow completes shed the CNN identically in both arms."""
    cfg = DetectorConfig(window_ms=200.0, overlap=0.5, threshold=0.4,
                         deadline_ms=1.0, degraded_after_violations=1,
                         shed_after_violations=2, consecutive_required=1)
    accel, gyro, t = _base_stream(0)
    rng = np.random.default_rng(14)
    splits = _random_splits(len(accel), rng)
    trace = _assert_identical(accel, gyro, t, splits, cfg=cfg,
                              latency_ms=50.0)
    assert any(kind == "detection" and rest[-1] == "fallback"
               for kind, *rest in trace)
