"""End-to-end integration at QUICK scale + experiment runner plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_lightweight_cnn
from repro.core.detector import DetectorConfig, FallDetector
from repro.experiments import (
    QUICK,
    fall_anatomy,
    get_scale,
    run_figure1,
    run_model_on_window,
)
from repro.experiments.configs import BENCH, PAPER
from repro.quant import QuantizedModel


class TestScales:
    def test_registry_and_env(self, monkeypatch):
        assert get_scale("quick") is QUICK
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() is PAPER
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_paper_scale_matches_paper_dimensions(self):
        assert PAPER.kfall_subjects == 32
        assert PAPER.selfcollected_subjects == 29
        assert PAPER.folds == 5
        assert PAPER.n_val_subjects == 4
        assert PAPER.epochs == 200
        assert PAPER.patience == 20

    def test_overrides(self):
        custom = BENCH.with_overrides(epochs=3)
        assert custom.epochs == 3
        assert BENCH.epochs != 3


class TestFigure1:
    def test_anatomy_stage_structure(self):
        result = run_figure1(task_id=30, seed=1)
        stages = result["stages"]
        assert set(stages) == {
            "pre_fall", "falling_usable", "falling_withheld_150ms",
            "impact", "post_fall",
        }
        # The withheld slice is exactly the airbag inflation time.
        assert stages["falling_withheld_150ms"]["duration_ms"] == pytest.approx(
            150.0, abs=10.0
        )
        # Free-fall dip lives in the falling phase; the spike at impact.
        falling_min = min(
            stages["falling_usable"].get("accel_mag_min", 1.0),
            stages["falling_withheld_150ms"].get("accel_mag_min", 1.0),
        )
        assert falling_min < 0.6
        assert stages["impact"]["accel_mag_max"] > 2.0
        # Pre-fall is ordinary activity around 1 g.
        assert stages["pre_fall"]["accel_mag_mean"] == pytest.approx(1.0,
                                                                     abs=0.25)

    def test_anatomy_rejects_adls(self, tiny_selfcollected):
        adl = next(r for r in tiny_selfcollected if not r.is_fall)
        with pytest.raises(ValueError):
            fall_anatomy(adl)


@pytest.mark.slow
class TestEndToEnd:
    @pytest.fixture(scope="class")
    def quick_run(self):
        return run_model_on_window(build_lightweight_cnn, QUICK)

    def test_cnn_beats_chance_comfortably(self, quick_run):
        metrics = quick_run["metrics"]
        assert metrics["f1"] > 60.0       # macro-F1 %, chance is ~49
        assert metrics["accuracy"] > 95.0

    def test_event_report_covers_all_test_events(self, quick_run):
        report = quick_run["events"]
        assert len(report.fall_events) > 0
        assert len(report.adl_events) > 0
        assert 0.0 <= report.fall_miss_rate <= 100.0
        assert 0.0 <= report.adl_false_positive_rate <= 100.0

    def test_imbalance_matches_paper_regime(self, quick_run):
        frac = quick_run["segments_falling"] / quick_run["segments_total"]
        assert 0.005 < frac < 0.15  # paper: 3.6 %

    def test_quantized_pipeline_end_to_end(self, quick_run, tiny_segments):
        model = quick_run["folds"][0].model
        test = quick_run["folds"][0].test
        qm = QuantizedModel.convert(model, test.X[:200])
        pf = model.predict(test.X).reshape(-1)
        pq = qm.predict(test.X).reshape(-1)
        assert np.mean((pf >= 0.5) == (pq >= 0.5)) > 0.97

    def test_streaming_detector_with_trained_model(self, quick_run,
                                                   tiny_selfcollected):
        model = quick_run["folds"][0].model
        detector = FallDetector(model, DetectorConfig(threshold=0.5))
        fall = next(r for r in tiny_selfcollected if r.task_id == 30)
        hits = detector.run(fall.accel, fall.gyro)
        stand = next(r for r in tiny_selfcollected if r.task_id == 1)
        detector.reset()
        quiet_hits = detector.run(stand.accel, stand.gyro)
        # Trained model must be far more active on the fall than on quiet
        # standing (it may legitimately fire zero times on both at this
        # training budget, but never fire on standing only).
        assert len(quiet_hits) <= len(hits)
