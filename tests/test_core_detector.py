"""Streaming FallDetector and AirbagController."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import AirbagController, DetectorConfig, FallDetector
from repro.datasets.subjects import make_subjects
from repro.datasets.synthesis.generator import synthesize_recording
from repro.datasets.tasks import TASKS


class _ConstantModel:
    """Fake model returning a fixed probability."""

    def __init__(self, probability):
        self.probability = probability
        self.calls = 0

    def predict(self, x):
        self.calls += 1
        return np.full((len(x), 1), self.probability)


class _MagnitudeModel:
    """Fires when the window's (scaled) accel-z mean drops well below 1 g —
    a crude free-fall detector good enough to exercise the plumbing."""

    def predict(self, x):
        dip = np.abs(x[:, :, :3]).sum(axis=2).min(axis=1)
        return (dip < 0.55).astype(float)[:, None] * 0.99


class TestInferenceCadence:
    def test_first_inference_after_full_window_then_every_hop(self):
        model = _ConstantModel(0.0)
        cfg = DetectorConfig(window_ms=200, overlap=0.5, fs=100.0)
        detector = FallDetector(model, cfg)
        n = 100
        for i in range(n):
            detector.push(np.array([0, 0, 1.0]), np.zeros(3))
        # Window = 20 samples, hop = 10: inferences at samples 20, 30, ...
        expected = 1 + (n - cfg.window_samples) // cfg.hop_samples
        assert model.calls == expected

    def test_detection_carries_time_and_probability(self):
        model = _ConstantModel(0.9)
        detector = FallDetector(model, DetectorConfig(window_ms=200))
        hit = None
        for i in range(30):
            hit = hit or detector.push(np.array([0, 0, 1.0]), np.zeros(3))
        assert hit is not None
        assert hit.probability == pytest.approx(0.9)
        assert hit.sample_index == 19  # first full window
        assert hit.time_s == pytest.approx(0.19)

    def test_reset_restarts_the_window(self):
        model = _ConstantModel(0.9)
        detector = FallDetector(model, DetectorConfig(window_ms=200))
        for i in range(25):
            detector.push(np.array([0, 0, 1.0]), np.zeros(3))
        detector.reset()
        assert detector.samples_seen == 0
        hits = [detector.push(np.array([0, 0, 1.0]), np.zeros(3))
                for _ in range(19)]
        assert not any(hits)  # window not full yet after reset

    def test_reset_is_indistinguishable_from_fresh(self):
        """Same input stream -> identical detections and reports, whether
        the detector is freshly built or reset after a messy first life."""
        subject = make_subjects("DT", 1, seed=1)[0]
        rec = synthesize_recording(TASKS[30], subject, base_seed=4)
        cfg = DetectorConfig(deadline_ms=0.0)   # every inference violates

        def _capture(detector):
            hits = detector.run(rec.accel, rec.gyro)
            latency = detector.latency_report()
            # Only the deterministic latency fields; measured ms vary.
            counts = {k: latency[k] for k in ("inferences", "violations",
                                              "violation_rate")}
            return ([(h.sample_index, h.time_s, h.probability, h.source)
                     for h in hits],
                    detector.health_report(), counts)

        fresh = FallDetector(_MagnitudeModel(), cfg)
        expected = _capture(fresh)

        recycled = FallDetector(_MagnitudeModel(), cfg)
        # A messy first life: NaNs, a long gap, plenty of violations.
        recycled.push(np.full(3, np.nan), np.zeros(3), t=0.0)
        recycled.run(rec.accel[:200], rec.gyro[:200])
        assert recycled.deadline_violations > 0
        recycled.reset()
        assert recycled.deadline_violations == 0
        assert recycled.latency_report()["inferences"] == 0
        assert recycled.health == "healthy"
        assert recycled.health_transitions == []
        assert _capture(recycled) == expected


class TestOnSyntheticFall:
    @pytest.fixture(scope="class")
    def fall_recording(self):
        subject = make_subjects("DT", 1, seed=1)[0]
        return synthesize_recording(TASKS[30], subject, base_seed=4)

    def test_fires_inside_falling_window(self, fall_recording):
        detector = FallDetector(_MagnitudeModel(), DetectorConfig())
        hits = detector.run(fall_recording.accel, fall_recording.gyro)
        assert hits
        first = hits[0].sample_index
        assert first >= fall_recording.fall_onset
        # Well before the recording ends (not a post-hoc detection).
        assert first <= fall_recording.impact + 40

    def test_quiet_standing_never_fires(self):
        subject = make_subjects("DT", 1, seed=1)[0]
        stand = synthesize_recording(TASKS[1], subject, base_seed=4,
                                     duration_scale=0.3)
        detector = FallDetector(_MagnitudeModel(), DetectorConfig())
        assert detector.run(stand.accel, stand.gyro) == []


class TestAirbagController:
    def test_latches_first_trigger(self):
        model = _ConstantModel(0.9)
        controller = AirbagController(FallDetector(model,
                                                   DetectorConfig(window_ms=200)))
        triggers = []
        for i in range(60):
            hit = controller.push(np.array([0, 0, 1.0]), np.zeros(3))
            if hit:
                triggers.append(hit)
        assert len(triggers) == 1  # single-shot device
        assert controller.state == "triggered"

    def test_inflation_time_accounting(self):
        model = _ConstantModel(0.9)
        controller = AirbagController(
            FallDetector(model, DetectorConfig(window_ms=200)),
            inflation_ms=150.0,
        )
        for i in range(25):
            controller.push(np.array([0, 0, 1.0]), np.zeros(3))
        trigger_t = controller.trigger.time_s
        assert controller.deployed_at_s == pytest.approx(trigger_t + 0.150)
        assert controller.protects(trigger_t + 0.2)
        assert not controller.protects(trigger_t + 0.1)

    def test_never_triggered_never_protects(self):
        controller = AirbagController(
            FallDetector(_ConstantModel(0.0), DetectorConfig(window_ms=200))
        )
        for i in range(40):
            controller.push(np.array([0, 0, 1.0]), np.zeros(3))
        assert controller.deployed_at_s is None
        assert not controller.protects(10.0)

    def test_invalid_inflation_rejected(self):
        with pytest.raises(ValueError):
            AirbagController(
                FallDetector(_ConstantModel(0.0), DetectorConfig()),
                inflation_ms=-5,
            )
