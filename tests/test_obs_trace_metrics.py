"""Observability: spans, metrics, JSONL round-trip, deadline monitoring."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.detector import AirbagController, DetectorConfig, FallDetector
from repro.nn.callbacks import CSVLogger, TelemetryCallback
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecord,
    TraceCollector,
    format_span_tree,
    load_jsonl,
)


@pytest.fixture
def collector():
    return TraceCollector(enabled=True)


class TestSpans:
    def test_nesting_builds_paths_and_depths(self, collector):
        with collector.span("outer"):
            with collector.span("middle"):
                with collector.span("inner"):
                    pass
            with collector.span("sibling"):
                pass
        records = {r.name: r for r in collector.records()}
        assert records["outer"].depth == 0
        assert records["outer"].path == "outer"
        assert records["middle"].path == "outer/middle"
        assert records["inner"].path == "outer/middle/inner"
        assert records["inner"].depth == 2
        assert records["sibling"].parent_id == records["outer"].span_id
        # Children close before parents, so durations nest.
        assert records["outer"].duration_s >= records["middle"].duration_s

    def test_repeated_spans_aggregate_in_tree(self, collector):
        with collector.span("fit"):
            for epoch in range(3):
                with collector.span("fit/epoch", epoch=epoch):
                    pass
        tree = format_span_tree(collector.records())
        assert "fit/epoch" in tree
        # 3 calls collapse into one aggregated line.
        assert tree.count("fit/epoch") == 1

    def test_attrs_via_set(self, collector):
        with collector.span("stage", kind="test") as sp:
            sp.set("items", 42)
        (record,) = collector.records()
        assert record.attrs == {"kind": "test", "items": 42}

    def test_disabled_collector_records_nothing(self):
        collector = TraceCollector(enabled=False)
        with collector.span("ignored"):
            pass
        assert collector.records() == []

    def test_module_level_span_is_noop_unless_enabled(self):
        obs.get_collector().clear()
        assert not obs.tracing_enabled()
        with obs.span("ignored") as sp:
            sp.set("a", 1)  # must not raise on the null span
        assert obs.get_collector().records() == []

    def test_enable_disable_roundtrip(self):
        obs.get_collector().clear()
        obs.enable_tracing()
        try:
            with obs.span("real"):
                pass
        finally:
            obs.disable_tracing()
        names = [r.name for r in obs.get_collector().records()]
        assert "real" in names
        obs.clear_trace()

    def test_jsonl_roundtrip(self, collector, tmp_path):
        with collector.span("a", n=1):
            with collector.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert collector.export_jsonl(path) == 2
        loaded = load_jsonl(path)
        assert [r.to_json() for r in loaded] == [
            r.to_json() for r in collector.records()
        ]
        # The file is genuine JSONL: one parseable object per line.
        lines = path.read_text().strip().splitlines()
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_thread_safety_independent_stacks(self, collector):
        n_threads, n_spans = 8, 50
        errors = []

        def worker(tid):
            try:
                for i in range(n_spans):
                    with collector.span(f"t{tid}") as sp:
                        with collector.span("child"):
                            sp.set("i", i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        records = collector.records()
        assert len(records) == n_threads * n_spans * 2
        # Per-thread stacks: every top-level span has depth 0, every child
        # depth 1 — no cross-thread nesting.
        for record in records:
            assert record.depth == (1 if record.name == "child" else 0)
        assert len({r.span_id for r in records}) == len(records)

    def test_span_tree_handles_empty(self):
        assert "no spans" in format_span_tree([])


class TestMetrics:
    def test_counter_gauge(self):
        c, g = Counter(), Gauge()
        c.inc()
        c.inc(4)
        g.set(2.5)
        assert c.value == 5
        assert g.value == 2.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_percentiles_uniform(self):
        hist = Histogram(buckets=[float(b) for b in range(1, 102)])
        for v in range(1, 101):
            hist.observe(float(v))
        s = hist.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert abs(s["mean"] - 50.5) < 1e-9
        assert abs(s["p50"] - 50.0) <= 1.0
        assert abs(s["p95"] - 95.0) <= 1.0
        assert abs(s["p99"] - 99.0) <= 1.0

    def test_histogram_overflow_uses_max(self):
        hist = Histogram(buckets=[1.0, 2.0])
        hist.observe(500.0)
        assert hist.percentile(99.0) == 500.0
        assert hist.summary()["max"] == 500.0

    def test_histogram_empty_and_validation(self):
        hist = Histogram(buckets=[1.0, 2.0])
        assert hist.summary()["count"] == 0
        assert hist.percentile(50.0) == 0.0
        with pytest.raises(ValueError):
            Histogram(buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_histogram_thread_safety(self):
        hist = Histogram(buckets=[float(b) for b in range(1, 20)])

        def worker():
            for v in range(1000):
                hist.observe(float(v % 10) + 0.5)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 4000

    def test_registry_get_or_create_and_type_clash(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        reg.counter("x").inc(3)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["x"] == 3
        assert snap["h"]["count"] == 1
        reg.reset()
        assert reg.snapshot()["x"] == 0


class _SleepyModel:
    """predict() that burns a configurable amount of wall time."""

    def __init__(self, sleep_s=0.0, prob=0.1):
        self.sleep_s = sleep_s
        self.prob = prob

    def predict(self, x):
        if self.sleep_s:
            time.sleep(self.sleep_s)
        return np.array([[self.prob]])


class TestDeadlineMonitor:
    def _stream(self, detector, n=120):
        rng = np.random.default_rng(0)
        for _ in range(n):
            detector.push(rng.normal(0, 0.05, 3), rng.normal(0, 1.0, 3))

    def test_zero_deadline_counts_every_inference(self):
        config = DetectorConfig(window_ms=200.0, deadline_ms=0.0)
        detector = FallDetector(_SleepyModel(), config)
        self._stream(detector)
        report = detector.latency_report()
        assert report["inferences"] > 0
        assert report["violations"] == report["inferences"]
        assert report["violation_rate"] == 1.0
        assert report["deadline_ms"] == 0.0

    def test_generous_deadline_never_violates(self):
        config = DetectorConfig(window_ms=200.0, deadline_ms=10_000.0)
        detector = FallDetector(_SleepyModel(), config)
        self._stream(detector)
        report = detector.latency_report()
        assert report["inferences"] > 0
        assert report["violations"] == 0
        assert report["p99_ms"] >= report["p50_ms"] >= 0.0

    def test_default_deadline_is_hop_interval(self):
        config = DetectorConfig(window_ms=400.0, overlap=0.5, fs=100.0)
        assert config.effective_deadline_ms == pytest.approx(200.0)
        with pytest.raises(ValueError):
            DetectorConfig(deadline_ms=-1.0)

    def test_slow_model_violates_hop_deadline(self):
        # Hop = 100 samples * (1 - 0.5) -> 200 ms at 100 Hz; 1 ms deadline
        # with a 5 ms model must violate every time.
        config = DetectorConfig(window_ms=200.0, deadline_ms=1.0)
        detector = FallDetector(_SleepyModel(sleep_s=0.005), config)
        self._stream(detector, n=60)
        report = detector.latency_report()
        assert report["violations"] == report["inferences"] > 0
        assert report["p50_ms"] >= 5.0

    def test_reset_clears_stats_unless_preserved(self):
        # Default reset leaves the detector indistinguishable from a fresh
        # one — including the latency histogram and violation counter.
        detector = FallDetector(_SleepyModel(),
                                DetectorConfig(window_ms=200.0,
                                               deadline_ms=0.0))
        self._stream(detector, n=40)
        assert detector.latency_report()["inferences"] > 0
        assert detector.deadline_violations > 0
        detector.reset()
        assert detector.latency_report()["inferences"] == 0
        assert detector.deadline_violations == 0
        # Deployment-wide statistics opt in to surviving a trial reset.
        self._stream(detector, n=40)
        before = detector.latency_report()["inferences"]
        detector.reset(preserve_latency_stats=True)
        assert detector.latency_report()["inferences"] == before
        self._stream(detector, n=40)
        assert detector.latency_report()["inferences"] > before

    def test_airbag_margin_report(self):
        detector = FallDetector(_SleepyModel(prob=0.9),
                                DetectorConfig(window_ms=200.0))
        airbag = AirbagController(detector, inflation_ms=150.0)
        rng = np.random.default_rng(1)
        for _ in range(60):
            airbag.push(rng.normal(0, 0.05, 3), rng.normal(0, 1.0, 3))
        report = airbag.margin_report()
        assert report["inflation_budget_ms"] == 150.0
        assert report["reaction_p99_ms"] == pytest.approx(
            150.0 + report["inference_p99_ms"])
        assert report["inferences"] > 0
        # prob=0.9 fires on the first full window.
        assert airbag.trigger is not None
        impact = airbag.trigger.time_s + 1.0
        assert airbag.margin_ms(impact) == pytest.approx(
            1000.0 * (impact - airbag.deployed_at_s))
        fresh = AirbagController(FallDetector(_SleepyModel(prob=0.0)))
        assert fresh.margin_ms(1.0) is None


class TestCallbacks:
    def _fit_tiny_model(self, callback, epochs=3):
        from repro import nn

        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 8)).astype(float)
        y = (x[:, 0] > 0).astype(float)[:, None]
        inp = nn.Input((8,))
        out = nn.layers.Dense(1, activation="sigmoid")(inp)
        model = nn.Model(inp, out).compile("adam", "binary_crossentropy")
        return model.fit(x, y, epochs=epochs, batch_size=16,
                         callbacks=[callback], seed=0)

    def test_csvlogger_flushes_every_epoch(self, tmp_path):
        path = tmp_path / "log.csv"
        logger = CSVLogger(path)
        logger.on_train_begin()
        logger.on_epoch_end(0, {"loss": 0.5})
        # Regression: rows must reach disk before on_train_end (early
        # stopping or a crash must not lose them).
        lines = path.read_text().splitlines()
        assert lines == ["epoch,loss", "0,0.5"]
        logger.on_epoch_end(1, {"loss": 0.25})
        assert len(path.read_text().splitlines()) == 3
        logger.on_train_end()
        assert logger._fh is None
        logger.on_train_end()  # idempotent

    def test_csvlogger_in_real_fit(self, tmp_path):
        path = tmp_path / "fit.csv"
        self._fit_tiny_model(CSVLogger(path), epochs=2)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("epoch")
        assert len(lines) == 3

    def test_telemetry_callback_streams_jsonl(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        self._fit_tiny_model(TelemetryCallback(path), epochs=3)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        epoch_records = [r for r in records if r["event"] == "epoch"]
        assert [r["epoch"] for r in epoch_records] == [0, 1, 2]
        assert all(r["duration_s"] >= 0.0 for r in epoch_records)
        assert all("loss" in r for r in epoch_records)
        assert records[-1]["event"] == "train_end"
        assert records[-1]["epochs"] == 3


class TestLayerTiming:
    def test_off_by_default_and_opt_in(self):
        from repro import nn
        from repro.obs import MetricsRegistry

        inp = nn.Input((8,))
        out = nn.layers.Dense(1, activation="sigmoid")(inp)
        model = nn.Model(inp, out).compile("adam", "binary_crossentropy")
        x = np.zeros((4, 8))
        model.predict(x)
        assert model._layer_timing is False
        assert model.layer_timings() == {}

        registry = MetricsRegistry()
        model.enable_layer_timing(True, registry=registry)
        model.predict(x)
        timings = model.layer_timings()
        assert any(name.startswith("nn/forward/") for name in timings)
        forward = next(iter(timings.values()))
        assert forward["count"] >= 1

        model.enable_layer_timing(False)
        assert model.layer_timings() == {}

    def test_backward_timing_recorded_during_training(self):
        from repro import nn
        from repro.obs import MetricsRegistry

        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 8))
        y = (x[:, 0] > 0).astype(float)[:, None]
        inp = nn.Input((8,))
        out = nn.layers.Dense(1, activation="sigmoid")(inp)
        model = nn.Model(inp, out).compile("adam", "binary_crossentropy")
        registry = MetricsRegistry()
        model.enable_layer_timing(True, registry=registry)
        model.fit(x, y, epochs=1, batch_size=8, seed=0)
        names = registry.names()
        assert any(n.startswith("nn/backward/") for n in names)


class TestLogging:
    def test_get_logger_namespacing(self):
        assert obs.get_logger().name == "repro"
        assert obs.get_logger("core.trainer").name == "repro.core.trainer"
        assert obs.get_logger("repro.nn.model").name == "repro.nn.model"

    def test_configure_logging_idempotent(self):
        import io
        import logging

        stream = io.StringIO()
        root = obs.configure_logging(logging.INFO, stream=stream)
        obs.configure_logging(logging.INFO, stream=stream)
        handlers = [h for h in root.handlers
                    if isinstance(h, logging.StreamHandler)
                    and not isinstance(h, logging.NullHandler)]
        assert len(handlers) == 1
        obs.get_logger("test").info("hello")
        assert "hello" in stream.getvalue()
