"""Batched int8 kernels: reference parity, batch invariance, pruning.

The fast path (`QuantizedModel.predict`) must be *bit-identical* to the
per-op reference lowering (`predict_reference`) — the deployed-arithmetic
contract — and batch-invariant by construction (no float matmul on the
datapath).  These properties are exercised over random shapes,
per-channel scales and zero-point edge cases including saturation at
``INT8_MIN`` / ``INT8_MAX``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architecture import CnnHyperParams, build_lightweight_cnn
from repro.quant import (
    INT8_MAX,
    INT8_MIN,
    FixedPointMultiplier,
    QuantizedModel,
    RequantPlan,
    magnitude_prune,
    fine_tune,
    pack_multipliers,
    requantize,
    requantize_block,
    requantize_block_fast,
    requantize_lut,
    sparsity_report,
    structured_prune,
)
from repro.quant.prune import apply_masks


def _converted(window=40, seed=3, hyper=None, scale=1.0):
    rng = np.random.default_rng(seed)
    model = build_lightweight_cnn(window, hyper=hyper, seed=seed)
    calib = (scale * rng.normal(size=(48, window, 9))).astype(np.float32)
    return model, QuantizedModel.convert(model, calib), rng


# ----------------------------------------------------------------------
# requantize primitives: vectorized == scalar, bit for bit
# ----------------------------------------------------------------------
class TestRequantizePrimitives:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        multiplier=st.floats(1e-6, 0.999),
        zero_point=st.integers(-128, 127),
        magnitude=st.sampled_from([10, 10_000, 2**30]),
    )
    def test_block_matches_scalar(self, seed, multiplier, zero_point,
                                  magnitude):
        """`requantize_block` over a (batch, channel) grid reproduces the
        scalar reference element-wise, including deep saturation."""
        rng = np.random.default_rng(seed)
        mults = [
            FixedPointMultiplier.from_real(multiplier * float(f))
            for f in rng.uniform(0.25, 4.0, size=5)
        ]
        m0s, shifts = pack_multipliers(mults)
        acc = rng.integers(-magnitude, magnitude, size=(16, 5), dtype=np.int64)
        block = requantize_block(acc, m0s, shifts, zero_point)
        assert block.dtype == np.int8
        for c, mult in enumerate(mults):
            scalar = requantize(acc[:, c], mult, zero_point)
            np.testing.assert_array_equal(block[:, c], scalar)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        multiplier=st.floats(1e-6, 0.999),
        zero_point=st.integers(-128, 127),
        magnitude=st.sampled_from([10, 200_000, 2**28]),
    )
    def test_fast_path_matches_block(self, seed, multiplier, zero_point,
                                     magnitude):
        """The float64 pipeline (or its int64 fallback when accumulators
        exceed the exactness bound) equals the int64 block requantize."""
        rng = np.random.default_rng(seed)
        mults = [
            FixedPointMultiplier.from_real(multiplier * float(f))
            for f in rng.uniform(0.25, 4.0, size=4)
        ]
        plan = RequantPlan(mults)
        acc = rng.integers(-magnitude, magnitude, size=(9, 4), dtype=np.int64)
        expected = requantize_block(acc, plan.m0s, plan.shifts, zero_point)
        got = requantize_block_fast(acc.astype(np.float64), plan, zero_point)
        np.testing.assert_array_equal(got, expected)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        multiplier=st.floats(1e-6, 0.999),
        zero_point=st.integers(-128, 127),
    )
    def test_relu_fused_lower_bound(self, seed, multiplier, zero_point):
        """`lo=zero_point` (the fused ReLU) equals requantize-then-max."""
        rng = np.random.default_rng(seed)
        mults = [FixedPointMultiplier.from_real(multiplier)] * 3
        plan = RequantPlan(mults)
        acc = rng.integers(-50_000, 50_000, size=(8, 3), dtype=np.int64)
        expected = np.maximum(
            requantize_block(acc, plan.m0s, plan.shifts, zero_point),
            np.int8(zero_point),
        )
        got = requantize_block_fast(
            acc.astype(np.float64), plan, zero_point, lo=zero_point)
        np.testing.assert_array_equal(got, expected)

    @settings(max_examples=40, deadline=None)
    @given(
        multiplier=st.floats(1e-6, 0.999),
        in_zp=st.integers(-128, 127),
        out_zp=st.integers(-128, 127),
    )
    def test_lut_covers_every_int8_input(self, multiplier, in_zp, out_zp):
        """The concat rescale LUT equals the scalar requantize for all
        256 inputs, and raw negative int8 indices land correctly."""
        mult = FixedPointMultiplier.from_real(multiplier)
        lut = requantize_lut(mult, in_zp, out_zp)
        q = np.arange(INT8_MIN, INT8_MAX + 1, dtype=np.int64)
        expected = requantize(q - in_zp, mult, out_zp)
        got = lut[q.astype(np.int8)]  # native negative indexing
        np.testing.assert_array_equal(got, expected)

    def test_saturation_reaches_both_rails(self):
        """Extreme accumulators pin the output at INT8_MIN / INT8_MAX
        through both the int64 and the float fast paths."""
        mult = FixedPointMultiplier.from_real(0.9)
        plan = RequantPlan([mult])
        acc = np.array([[2**40], [-(2**40)]], dtype=np.int64)
        block = requantize_block(acc, plan.m0s, plan.shifts, 0)
        fast = requantize_block_fast(acc.astype(np.float64), plan, 0)
        assert block[0, 0] == INT8_MAX and block[1, 0] == INT8_MIN
        np.testing.assert_array_equal(block, fast)


# ----------------------------------------------------------------------
# model-level parity and batch invariance
# ----------------------------------------------------------------------
class TestKernelParity:
    @pytest.mark.parametrize("window,hyper", [
        (40, None),
        (20, CnnHyperParams(conv_filters=8, kernel_size=3, pool_size=2)),
        (30, CnnHyperParams(conv_filters=16, kernel_size=5, pool_size=3)),
    ])
    def test_fast_path_bit_identical_to_reference(self, window, hyper):
        _, quantized, rng = _converted(window=window, hyper=hyper)
        x = rng.normal(size=(50, window, 9)).astype(np.float32)
        for batch_size in (1, 7, 32, 512):
            fast = quantized.predict(x, batch_size=batch_size)
            reference = quantized.predict_reference(x, batch_size=batch_size)
            np.testing.assert_array_equal(fast, reference)

    def test_parity_under_input_saturation(self):
        """Inputs far outside the calibration range clip to the int8
        rails; the fast path must still agree with the reference."""
        _, quantized, rng = _converted()
        x = (50.0 * rng.normal(size=(16, 40, 9))).astype(np.float32)
        np.testing.assert_array_equal(
            quantized.predict(x), quantized.predict_reference(x))

    def test_parity_with_skewed_calibration(self):
        """Asymmetric calibration ranges give nonzero activation
        zero-points; parity must hold there too."""
        rng = np.random.default_rng(11)
        model = build_lightweight_cnn(40, seed=11)
        calib = (rng.normal(size=(48, 40, 9)) + 2.5).astype(np.float32)
        quantized = QuantizedModel.convert(model, calib)
        x = (rng.normal(size=(20, 40, 9)) + 2.5).astype(np.float32)
        np.testing.assert_array_equal(
            quantized.predict(x), quantized.predict_reference(x))

    def test_batch_invariance_bitwise(self):
        """A window's prediction is byte-identical no matter which other
        windows share its batch (integer ops never mix rows)."""
        _, quantized, rng = _converted()
        x = rng.normal(size=(24, 40, 9)).astype(np.float32)
        full = quantized.predict(x)
        solo = np.concatenate(
            [quantized.predict(x[i : i + 1]) for i in range(len(x))])
        np.testing.assert_array_equal(full, solo)
        # Shuffled batch composition: same rows, same bytes.
        perm = rng.permutation(len(x))
        shuffled = quantized.predict(x[perm])
        np.testing.assert_array_equal(shuffled, full[perm])

    def test_predict_empty_input_keeps_output_shape(self):
        """Mirrors Model.predict: zero windows in, (0, 1) out."""
        model, quantized, _ = _converted()
        out = quantized.predict(np.empty((0, 40, 9)))
        assert out.shape == (0,) + tuple(model.output_shape)
        ref = quantized.predict_reference(np.empty((0, 40, 9)))
        assert ref.shape == out.shape


# ----------------------------------------------------------------------
# pruning
# ----------------------------------------------------------------------
class TestPruning:
    def _trained(self, n=160, seed=0):
        rng = np.random.default_rng(seed)
        model = build_lightweight_cnn(40, seed=seed)
        x = rng.normal(size=(n, 40, 9)).astype(np.float32)
        y = (rng.random((n, 1)) < 0.3).astype(np.float32)
        model.compile("adam", "binary_crossentropy")
        model.fit(x, y, epochs=1, batch_size=32, seed=0)
        return model, x, y

    def test_magnitude_prune_reaches_sparsity_and_masks_hold(self):
        model, x, y = self._trained()
        masks = magnitude_prune(model, 0.6)
        assert "output" not in masks  # output layer is skipped
        report = sparsity_report(model)
        assert report["total"] >= 0.55
        fine_tune(model, x, y, masks=masks, epochs=1, batch_size=32)
        after = sparsity_report(model)
        for name, mask in masks.items():
            w = model.get_layer(name).params["W"]
            assert np.all(w[~mask] == 0.0)
        assert after["total"] >= 0.55

    def test_apply_masks_rezeroes(self):
        model, _, _ = self._trained()
        masks = magnitude_prune(model, 0.5)
        layer = next(iter(masks))
        model.get_layer(layer).params["W"] += 1.0  # simulate an update
        apply_masks(model, masks)
        w = model.get_layer(layer).params["W"]
        assert np.all(w[~masks[layer]] == 0.0)

    def test_structured_prune_shrinks_macs_and_bytes(self):
        model, x, _ = self._trained()
        pruned, report = structured_prune(model, 0.5)
        assert report.params_after < report.params_before
        for _, (orig, kept) in report.filters.items():
            assert kept == orig // 2
        calib = x[:48]
        q_full = QuantizedModel.convert(model, calib)
        q_pruned = QuantizedModel.convert(pruned, calib)
        assert q_pruned.total_macs < q_full.total_macs
        assert q_pruned.weight_bytes < q_full.weight_bytes
        # The pruned graph's fast path keeps the bit-identity contract.
        probe = x[:20]
        np.testing.assert_array_equal(
            q_pruned.predict(probe), q_pruned.predict_reference(probe))

    def test_structured_prune_keeps_top_filters(self):
        """fraction=0 is an identity rebuild: same predictions."""
        model, x, _ = self._trained()
        pruned, report = structured_prune(model, 0.0)
        np.testing.assert_allclose(
            pruned.predict(x[:16]), model.predict(x[:16]), atol=1e-6)
        assert report.params_after == report.params_before

    def test_structured_prune_then_fine_tune_trains(self):
        model, x, y = self._trained(n=96)
        pruned, _ = structured_prune(model, 0.5)
        pruned.compile("adam", "binary_crossentropy")
        losses = fine_tune(pruned, x, y, epochs=2, batch_size=32)
        assert len(losses) == 2 and np.isfinite(losses).all()

    def test_invalid_fractions_rejected(self):
        model, _, _ = self._trained(n=64)
        with pytest.raises(ValueError):
            magnitude_prune(model, 1.0)
        with pytest.raises(ValueError):
            structured_prune(model, -0.1)
