"""Event-level evaluation, threshold detectors and segment metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.events import evaluate_events
from repro.core.preprocessing import SegmentSet
from repro.core.thresholds import (
    ImpactEnergyDetector,
    VerticalVelocityDetector,
    evaluate_threshold_detector,
)
from repro.datasets.subjects import make_subjects
from repro.datasets.synthesis.generator import synthesize_recording
from repro.datasets.tasks import TASKS
from repro.eval.metrics import binary_report, confusion, segment_metrics


def _segment_set(rows):
    """rows: (event_id, task_id, is_fall, trigger_valid, y)."""
    n = len(rows)
    return SegmentSet(
        X=np.zeros((n, 4, 9), dtype=np.float32),
        y=np.array([r[4] for r in rows]),
        subject=np.array(["S1"] * n, dtype=object),
        task_id=np.array([r[1] for r in rows]),
        event_id=np.array([r[0] for r in rows], dtype=object),
        event_is_fall=np.array([r[2] for r in rows]),
        trigger_valid=np.array([r[3] for r in rows]),
    )


class TestEventEvaluation:
    def test_one_hit_detects_the_fall(self):
        segs = _segment_set([
            ("F1", 30, True, True, 0),
            ("F1", 30, True, True, 1),
            ("F1", 30, True, True, 1),
        ])
        report = evaluate_events(segs, np.array([0.1, 0.9, 0.2]))
        assert report.fall_miss_rate == 0.0

    def test_all_segments_missed_counts_as_miss(self):
        segs = _segment_set([
            ("F1", 30, True, True, 1),
            ("F1", 30, True, True, 1),
        ])
        report = evaluate_events(segs, np.array([0.2, 0.4]))
        assert report.fall_miss_rate == 100.0

    def test_late_trigger_does_not_count(self):
        # The only firing segment ends after impact - 150 ms: miss.
        segs = _segment_set([
            ("F1", 30, True, True, 1),
            ("F1", 30, True, False, 0),  # post-impact segment fires
        ])
        report = evaluate_events(segs, np.array([0.1, 0.99]))
        assert report.fall_miss_rate == 100.0

    def test_adl_any_fire_is_false_positive(self):
        segs = _segment_set([
            ("A1", 6, False, True, 0),
            ("A1", 6, False, True, 0),
            ("A2", 6, False, True, 0),
        ])
        report = evaluate_events(segs, np.array([0.1, 0.9, 0.2]))
        assert report.adl_false_positive_rate == pytest.approx(50.0)

    def test_per_task_rates(self):
        segs = _segment_set([
            ("F1", 39, True, True, 1),
            ("F2", 39, True, True, 1),
            ("F3", 30, True, True, 1),
        ])
        report = evaluate_events(segs, np.array([0.9, 0.1, 0.9]))
        miss = report.per_task_miss()
        assert miss[39] == pytest.approx(50.0)
        assert miss[30] == 0.0

    def test_red_green_split(self):
        segs = _segment_set([
            ("A1", 44, False, True, 0),   # red (obstacle jump)
            ("A2", 1, False, True, 0),    # green (standing)
        ])
        report = evaluate_events(segs, np.array([0.9, 0.1]))
        rg = report.red_green_false_positive()
        assert rg["red"] == 100.0
        assert rg["green"] == 0.0

    def test_augmented_segments_rejected(self):
        segs = _segment_set([("F1#aug", 30, True, True, 1)])
        with pytest.raises(ValueError, match="un-augmented"):
            evaluate_events(segs, np.array([0.9]))

    def test_probability_length_checked(self):
        segs = _segment_set([("F1", 30, True, True, 1)])
        with pytest.raises(ValueError, match="probabilities"):
            evaluate_events(segs, np.array([0.9, 0.1]))


class TestThresholdDetectors:
    @pytest.fixture(scope="class")
    def recordings(self):
        subject = make_subjects("TH", 1, seed=0)[0]
        fall = synthesize_recording(TASKS[30], subject, base_seed=2)
        stand = synthesize_recording(TASKS[1], subject, base_seed=2,
                                     duration_scale=0.3)
        walk = synthesize_recording(TASKS[6], subject, base_seed=2,
                                    duration_scale=0.5)
        return {"fall": fall, "stand": stand, "walk": walk}

    @pytest.mark.parametrize("detector_cls",
                             [VerticalVelocityDetector, ImpactEnergyDetector])
    def test_fires_during_fall_not_during_quiet_adls(self, recordings,
                                                     detector_cls):
        detector = detector_cls()
        fall = recordings["fall"]
        trigger = detector.first_trigger(fall)
        assert trigger is not None
        assert trigger >= fall.fall_onset - 20
        assert detector.first_trigger(recordings["stand"]) is None
        assert detector.first_trigger(recordings["walk"]) is None

    def test_height_scaling_changes_sensitivity(self, recordings):
        eager = VerticalVelocityDetector(velocity_threshold=0.2)
        strict = VerticalVelocityDetector(velocity_threshold=3.0)
        fall = recordings["fall"]
        t_eager = eager.first_trigger(fall)
        t_strict = strict.first_trigger(fall)
        assert t_eager is not None
        assert t_strict is None or t_strict >= t_eager

    def test_evaluation_accounting(self, recordings):
        detector = VerticalVelocityDetector()
        result = evaluate_threshold_detector(
            detector, [recordings["fall"], recordings["stand"]]
        )
        assert result["tp"] + result["fn"] == 1
        assert result["tn"] + result["fp"] == 1
        assert 0.0 <= result["f1"] <= 1.0

    def test_late_trigger_counts_as_miss(self, recordings):
        fall = recordings["fall"]

        class LateDetector(VerticalVelocityDetector):
            def first_trigger(self, recording):
                return recording.impact  # fires exactly at impact: too late

        result = evaluate_threshold_detector(LateDetector(), [fall])
        assert result["fn"] == 1 and result["tp"] == 0


class TestSegmentMetrics:
    def test_confusion_counts(self):
        counts = confusion([1, 1, 0, 0], [1, 0, 1, 0])
        assert counts == {"tp": 1, "fn": 1, "fp": 1, "tn": 1}

    def test_macro_average_of_collapsed_predictor(self):
        # All-negative predictions on imbalanced data: the paper's MLP row.
        y = np.array([0] * 96 + [1] * 4)
        report = binary_report(y, np.zeros_like(y))
        assert report["accuracy"] == pytest.approx(0.96)
        assert report["recall_macro"] == pytest.approx(0.5)
        assert report["precision_macro"] == pytest.approx(0.48)

    def test_perfect_predictions(self):
        y = np.array([0, 1, 0, 1])
        m = segment_metrics(y, np.array([0.1, 0.9, 0.2, 0.8]))
        assert m["accuracy"] == 1.0
        assert m["f1"] == 1.0

    def test_threshold_parameter(self):
        y = np.array([1, 0])
        strict = segment_metrics(y, np.array([0.6, 0.4]), threshold=0.7)
        lax = segment_metrics(y, np.array([0.6, 0.4]), threshold=0.5)
        assert strict["recall_pos"] == 0.0
        assert lax["recall_pos"] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            binary_report(np.array([]), np.array([]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion([1, 0], [1])
