"""Report renderers and paper reference tables."""

from __future__ import annotations

import pytest

from repro.core.events import EventOutcome, EventReport
from repro.eval.reports import (
    PAPER_TABLE3,
    PAPER_TABLE4_ADL_FP,
    PAPER_TABLE4_FALL_MISS,
    aggregate_fold_metrics,
    format_table,
    render_edge_report,
    render_table3,
    render_table4,
)


class _FakeFold:
    def __init__(self, metrics):
        self.metrics = metrics


class TestPaperReferenceData:
    def test_table3_has_all_cells(self):
        for window in (200, 300, 400):
            assert set(PAPER_TABLE3[window]) == {
                "MLP", "LSTM", "ConvLSTM2D", "CNN (Proposed)"
            }

    def test_table3_headline_number(self):
        # The paper's best configuration: CNN at 400 ms, F1 86.69.
        assert PAPER_TABLE3[400]["CNN (Proposed)"][3] == 86.69

    def test_table4_covers_all_tasks(self):
        assert len(PAPER_TABLE4_FALL_MISS) == 21
        assert len(PAPER_TABLE4_ADL_FP) == 23
        assert PAPER_TABLE4_FALL_MISS[39] == 16.00
        assert PAPER_TABLE4_ADL_FP[44] == 20.00


class TestRenderers:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_aggregate_fold_metrics_means_percentages(self):
        folds = [
            _FakeFold({"accuracy": 0.9, "precision": 0.8, "recall": 0.7,
                       "f1": 0.75}),
            _FakeFold({"accuracy": 1.0, "precision": 1.0, "recall": 0.9,
                       "f1": 0.95}),
        ]
        agg = aggregate_fold_metrics(folds)
        assert agg["accuracy"] == pytest.approx(95.0)
        assert agg["f1"] == pytest.approx(85.0)

    def test_render_table3_shows_measured_and_paper(self):
        measured = {400: {"CNN (Proposed)": {"accuracy": 97.0,
                                             "precision": 88.0,
                                             "recall": 82.0, "f1": 85.0}}}
        text = render_table3(measured)
        assert "CNN (Proposed)" in text
        assert "85.00" in text     # measured
        assert "86.69" in text     # paper reference

    def test_render_table4(self):
        outcomes = [
            EventOutcome("e1", 39, "S1", True, False, 5, 0),
            EventOutcome("e2", 39, "S1", True, True, 5, 2),
            EventOutcome("e3", 44, "S1", False, True, 5, 1),
            EventOutcome("e4", 1, "S1", False, False, 5, 0),
        ]
        text = render_table4(EventReport(outcomes))
        assert "T39" in text and "T44" in text
        assert "unconventional" in text

    def test_render_edge_report(self):
        text = render_edge_report(
            {"flash_kib": 61.0, "ram_kib": 4.0, "latency_ms": 0.9,
             "fusion_ms": 0.1}
        )
        assert "67.03" in text  # paper value shown alongside
        assert "61.00" in text
