"""Graph topology, node bookkeeping, and multi-branch execution order."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.graph import Input, Node, topological_order


class TestTopologicalOrder:
    def test_parents_precede_children(self):
        inp = Input((6, 9))
        a = nn.layers.Slice(-1, 0, 3)(inp)
        b = nn.layers.Slice(-1, 3, 6)(inp)
        merged = nn.layers.Concatenate()([a, b])
        out = nn.layers.Flatten()(merged)
        order = topological_order([out])
        position = {node.uid: i for i, node in enumerate(order)}
        for node in order:
            for parent in node.parents:
                assert position[parent.uid] < position[node.uid]

    def test_shared_parent_visited_once(self):
        inp = Input((4,))
        a = nn.layers.Dense(2, seed=0)(inp)
        b = nn.layers.Dense(2, seed=1)(inp)
        merged = nn.layers.Concatenate()([a, b])
        order = topological_order([merged])
        assert len(order) == 4  # input, a, b, concat
        assert len({n.uid for n in order}) == 4

    def test_deterministic_order(self):
        def build():
            inp = Input((4,))
            a = nn.layers.Dense(2, seed=0)(inp)
            b = nn.layers.Dense(2, seed=1)(inp)
            return topological_order([nn.layers.Concatenate()([a, b])])

        names_a = [type(n.layer).__name__ if n.layer else "in" for n in build()]
        names_b = [type(n.layer).__name__ if n.layer else "in" for n in build()]
        assert names_a == names_b


class TestNodes:
    def test_node_shapes_are_tuples_of_ints(self):
        node = Input((5, 3))
        assert node.shape == (5, 3)
        assert all(isinstance(s, int) for s in node.shape)

    def test_scalar_shape_promoted(self):
        node = Input(7)
        assert node.shape == (7,)

    def test_uids_monotone(self):
        a, b = Input((2,)), Input((2,))
        assert b.uid > a.uid

    def test_is_input_flag(self):
        inp = Input((3,))
        out = nn.layers.Dense(2, seed=0)(inp)
        assert inp.is_input and not out.is_input


class TestDiamondGraphs:
    def test_gradient_accumulates_at_shared_node(self):
        """x feeds two branches that are summed: dL/dx must double."""
        nn.set_floatx(np.float64)
        try:
            inp = nn.Input((3,))
            merged = nn.layers.Add()([inp, inp])
            model = nn.Model(inp, merged).compile("sgd", "mse")
            x = np.array([[1.0, 2.0, 3.0]])
            y_pred = model._forward(x, training=False)
            np.testing.assert_allclose(y_pred, 2 * x)
            # Train a dense layer placed before the diamond and verify the
            # doubled gradient numerically.
            inp2 = nn.Input((3,))
            h = nn.layers.Dense(3, seed=0)(inp2)
            merged2 = nn.layers.Add()([h, h])
            model2 = nn.Model(inp2, merged2).compile("sgd", "mse")
            y = np.zeros((1, 3))
            y_pred = model2._forward(x, training=True)
            model2._backward(model2.loss.grad(y, y_pred))
            dense = model2.layers[0]
            analytic = dense.grads["W"].copy()
            eps = 1e-6
            w = dense.params["W"]
            old = w[0, 0]
            w[0, 0] = old + eps
            lp = model2.loss(y, model2._forward(x, False))
            w[0, 0] = old - eps
            lm = model2.loss(y, model2._forward(x, False))
            w[0, 0] = old
            numeric = (lp - lm) / (2 * eps)
            assert analytic[0, 0] == pytest.approx(numeric, rel=1e-5)
        finally:
            nn.set_floatx(np.float32)

    def test_three_branch_values_are_independent(self):
        inp = nn.Input((4, 9))
        slices = [nn.layers.Slice(-1, i, i + 3)(inp) for i in (0, 3, 6)]
        merged = nn.layers.Concatenate()(slices)
        model = nn.Model(inp, merged)
        x = np.arange(36, dtype=np.float32).reshape(1, 4, 9)
        out = model._forward(x, training=False)
        np.testing.assert_array_equal(out, x)  # concat(slices) == identity
