"""Architecture builders, training protocol and cross-validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.architecture import CnnHyperParams, build_lightweight_cnn
from repro.core.baselines import (
    MODEL_BUILDERS,
    build_convlstm2d,
    build_lstm,
    build_mlp,
)
from repro.core.crossval import subject_folds
from repro.core.trainer import (
    TrainingConfig,
    augment_fall_segments,
    class_weights,
    initial_output_bias,
    train_model,
)


class TestArchitecture:
    def test_three_branches_exist(self):
        model = build_lightweight_cnn(40)
        names = [layer.name for layer in model.layers]
        for branch in ("accel", "gyro", "euler"):
            assert f"split_{branch}" in names
            assert f"conv_{branch}" in names
            assert f"pool_{branch}" in names
        assert "concat_branches" in names

    def test_paper_head_dimensions(self):
        model = build_lightweight_cnn(40)
        assert model.get_layer("dense_1").units == 64
        assert model.get_layer("dense_2").units == 32
        assert model.get_layer("output").units == 1
        assert model.get_layer("output").activation_name == "sigmoid"

    @pytest.mark.parametrize("window", [20, 30, 40])
    def test_window_sizes_supported(self, window):
        model = build_lightweight_cnn(window)
        x = np.zeros((2, window, 9), dtype=np.float32)
        assert model.predict(x).shape == (2, 1)

    def test_output_bias_sets_prior(self):
        bias = -3.0
        model = build_lightweight_cnn(40, output_bias=bias, seed=0)
        assert model.get_layer("output").params["b"][0] == pytest.approx(bias)
        # With a strongly negative bias a fresh model predicts ~sigmoid(b).
        x = np.zeros((4, 40, 9), dtype=np.float32)
        p = model.predict(x)
        assert np.all(p < 0.2)

    def test_seed_reproducibility(self):
        a = build_lightweight_cnn(40, seed=5)
        b = build_lightweight_cnn(40, seed=5)
        x = np.random.default_rng(0).normal(size=(3, 40, 9)).astype(np.float32)
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_trunk_variant_has_no_branches(self):
        model = build_lightweight_cnn(40, branched=False)
        names = [layer.name for layer in model.layers]
        assert "conv_trunk" in names
        assert not any(n.startswith("split_") for n in names)

    def test_size_is_mcu_class(self):
        # The whole point: parameter count in the tens of thousands.
        model = build_lightweight_cnn(40)
        assert 10_000 < model.count_params() < 120_000

    def test_validation(self):
        with pytest.raises(ValueError, match="9 IMU channels"):
            build_lightweight_cnn(40, n_channels=6)
        with pytest.raises(ValueError, match="too short"):
            build_lightweight_cnn(4, hyper=CnnHyperParams(kernel_size=5))
        with pytest.raises(ValueError, match="two dense layers"):
            CnnHyperParams(dense_units=(64, 32, 16))


class TestBaselines:
    @pytest.mark.parametrize("name", list(MODEL_BUILDERS))
    def test_builders_share_signature_and_run(self, name):
        model = MODEL_BUILDERS[name](20, 9, output_bias=-2.0, seed=1)
        x = np.zeros((2, 20, 9), dtype=np.float32)
        p = model.predict(x)
        assert p.shape == (2, 1)
        assert np.all((p >= 0) & (p <= 1))

    def test_mlp_is_fully_dense(self):
        model = build_mlp(20)
        kinds = {type(l).__name__ for l in model.layers}
        assert kinds == {"Flatten", "Dense"}

    def test_lstm_has_recurrent_layer(self):
        model = build_lstm(20)
        assert any(type(l).__name__ == "LSTM" for l in model.layers)

    def test_convlstm_reshapes_to_frames(self):
        model = build_convlstm2d(20)
        assert any(type(l).__name__ == "ConvLSTM2D" for l in model.layers)


class TestImbalanceHandling:
    def test_class_weights_balance_expectation(self):
        y = np.array([0] * 90 + [1] * 10)
        w = class_weights(y)
        # Total weight contributed by each class is equal.
        assert 90 * w[0] == pytest.approx(10 * w[1])

    def test_class_weights_degenerate_cases(self):
        assert class_weights(np.zeros(10)) == {0: 1.0, 1: 1.0}
        assert class_weights(np.ones(10)) == {0: 1.0, 1: 1.0}

    def test_output_bias_formula(self):
        # Eq. 1: b = log(p / (1-p)) with p the positive prior.
        y = np.array([0] * 96 + [1] * 4)
        assert initial_output_bias(y) == pytest.approx(np.log(0.04 / 0.96))

    def test_output_bias_degenerate(self):
        assert initial_output_bias(np.zeros(5)) == 0.0


class TestAugmentation:
    def test_adds_copies_of_positive_segments(self, tiny_segments):
        out = augment_fall_segments(tiny_segments, copies=2, seed=0)
        added = len(out) - len(tiny_segments)
        assert added == 2 * tiny_segments.n_positive
        # All added rows are positive and tagged as augmented.
        new_rows = out.select(np.arange(len(tiny_segments), len(out)))
        assert (new_rows.y == 1).all()
        assert all("#aug" in e for e in new_rows.event_id)

    def test_no_positives_is_a_noop(self, tiny_segments):
        negatives = tiny_segments.select(tiny_segments.y == 0)
        out = augment_fall_segments(negatives, copies=3, seed=0)
        assert len(out) == len(negatives)

    def test_augmented_signals_differ_from_sources(self, tiny_segments):
        out = augment_fall_segments(tiny_segments, copies=1, seed=0)
        pos_idx = np.flatnonzero(tiny_segments.y == 1)
        original = tiny_segments.X[pos_idx[0]]
        copy = out.X[len(tiny_segments)]
        assert not np.allclose(original, copy)


class TestSubjectFolds:
    def test_every_subject_tested_exactly_once(self):
        subjects = [f"S{i}" for i in range(13)]
        folds = subject_folds(subjects, k=5, n_val_subjects=2, seed=0)
        tested = [s for f in folds for s in f.test_subjects]
        assert sorted(tested) == sorted(subjects)

    def test_no_leakage_anywhere(self):
        folds = subject_folds([f"S{i}" for i in range(20)], k=4,
                              n_val_subjects=3, seed=1)
        for f in folds:
            assert not set(f.train_subjects) & set(f.test_subjects)
            assert not set(f.train_subjects) & set(f.val_subjects)
            assert not set(f.val_subjects) & set(f.test_subjects)

    def test_validation_subject_count(self):
        folds = subject_folds([f"S{i}" for i in range(61)], k=5,
                              n_val_subjects=4, seed=0)
        for f in folds:
            assert len(f.val_subjects) == 4
            # 61 subjects: 12-13 test, 4 val, rest train (paper's split).
            assert 12 <= len(f.test_subjects) <= 13
            assert len(f.train_subjects) == 61 - len(f.test_subjects) - 4

    def test_deterministic(self):
        a = subject_folds([f"S{i}" for i in range(10)], k=2, seed=3)
        b = subject_folds([f"S{i}" for i in range(10)], k=2, seed=3)
        assert a == b

    def test_too_few_subjects_rejected(self):
        with pytest.raises(ValueError):
            subject_folds(["A", "B"], k=5)

    def test_validation_request_clamped_to_keep_training_nonempty(self):
        # Asking for more validation subjects than available is clamped so
        # at least one training subject always remains.
        folds = subject_folds(["A", "B", "C"], k=3, n_val_subjects=5)
        for f in folds:
            assert len(f.train_subjects) >= 1
            assert len(f.val_subjects) == 1


class TestTrainModel:
    def test_subject_leak_rejected(self, tiny_segments):
        half = tiny_segments.by_subjects(tiny_segments.subjects[:1])
        with pytest.raises(ValueError, match="subject-independent"):
            train_model(build_lightweight_cnn, half, half,
                        TrainingConfig(epochs=1))

    def test_training_beats_chance(self, trained_cnn):
        model = trained_cnn["model"]
        test = trained_cnn["test"]
        probs = model.predict(test.X).reshape(-1)
        positives = probs[test.y == 1]
        negatives = probs[test.y == 0]
        assert positives.mean() > negatives.mean() + 0.2

    def test_output_bias_used_when_enabled(self, tiny_segments):
        # With use_output_bias the fresh model's initial mean prediction
        # approximates the class prior rather than 0.5.
        train = tiny_segments.by_subjects(tiny_segments.subjects[:1])
        val = tiny_segments.by_subjects(tiny_segments.subjects[1:])
        model, _ = train_model(
            build_lightweight_cnn, train, val,
            TrainingConfig(epochs=1, augment=False, use_output_bias=True),
        )
        bias = model.get_layer("output").params["b"][0]
        assert bias < -1.0  # falls are rare -> strongly negative prior
