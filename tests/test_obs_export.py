"""Metrics export: bucket snapshots, merge, JSONL round-trip, sampler,
Prometheus exposition (and its lint)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

from repro.obs import (
    Histogram,
    MetricsSampler,
    load_snapshot,
    metric_to_family,
    render_exposition,
)
from repro.obs.metrics import MetricsRegistry

_REPO_ROOT = pathlib.Path(__file__).parent.parent


# ----------------------------------------------------------------------
# histogram buckets / merge / round-trip
# ----------------------------------------------------------------------
def test_histogram_snapshot_superset_of_summary():
    hist = Histogram(buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 100.0):
        hist.observe(v)
    summary = hist.summary()
    snap = hist.snapshot()
    for key, value in summary.items():     # summary() unchanged, embedded
        assert snap[key] == value
    assert snap["sum"] == pytest.approx(105.0)
    # Cumulative, Prometheus-style, +Inf (None edge) last and == count.
    assert snap["buckets"] == [[1.0, 1], [2.0, 2], [4.0, 3], [None, 4]]
    assert hist.bucket_counts() == (1, 1, 1, 1)


def test_histogram_merge_exact():
    a, b = Histogram(buckets=(1.0, 2.0)), Histogram(buckets=(1.0, 2.0))
    for v in (0.5, 1.8):
        a.observe(v)
    for v in (0.2, 5.0, 1.1):
        b.observe(v)
    a.merge(b)
    assert a.count == 5
    assert a.bucket_counts() == (2, 2, 1)
    assert a.summary()["min"] == 0.2
    assert a.summary()["max"] == 5.0
    with pytest.raises(ValueError, match="edges differ"):
        a.merge(Histogram(buckets=(1.0, 3.0)))
    with pytest.raises(TypeError):
        a.merge("not a histogram")


def test_registry_snapshot_jsonl_round_trip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("detector/repaired_samples").inc(3)
    registry.gauge("detector/health").set(1.0)
    hist = registry.histogram("detector/latency_ms", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 9.0):
        hist.observe(v)
    path = tmp_path / "metrics.jsonl"
    assert registry.snapshot_to_jsonl(path) == 3

    entries = load_snapshot(path)
    assert entries["detector/repaired_samples"]["value"] == 3
    assert entries["detector/health"]["value"] == 1.0
    rebuilt = Histogram.from_entry(entries["detector/latency_ms"])
    assert rebuilt.summary() == hist.summary()
    assert rebuilt.bucket_counts() == hist.bucket_counts()
    # Rebuilt histograms merge like live ones (offline fleet aggregation).
    rebuilt.merge(hist)
    assert rebuilt.count == 6


def test_load_snapshot_validation(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_snapshot(path)
    path.write_text("not json\n")
    with pytest.raises(ValueError, match="not JSON"):
        load_snapshot(path)
    path.write_text('{"format": "other", "version": 1}\n')
    with pytest.raises(ValueError, match="not a repro-metrics-snapshot"):
        load_snapshot(path)
    path.write_text('{"format": "repro-metrics-snapshot", "version": 42}\n')
    with pytest.raises(ValueError, match="version"):
        load_snapshot(path)
    path.write_text(
        '{"format": "repro-metrics-snapshot", "version": 1, "metrics": 2}\n'
        '{"name": "a", "type": "counter", "value": 1}\n'
    )
    with pytest.raises(ValueError, match="declares 2"):
        load_snapshot(path)


# ----------------------------------------------------------------------
# sampler
# ----------------------------------------------------------------------
def test_sampler_bounded_and_cadence():
    registry = MetricsRegistry()
    counter = registry.counter("serve/samples_in")
    sampler = MetricsSampler(registry, interval_s=1.0, capacity=3)
    for step in range(6):
        counter.inc(10)
        sampler.sample(now=float(step))
    assert len(sampler) == 3               # bounded: oldest evicted
    series = sampler.series("serve/samples_in")
    assert series == [(3.0, 40), (4.0, 50), (5.0, 60)]
    # maybe_sample respects the cadence on injected clocks.
    assert sampler.maybe_sample(now=5.5) is None
    assert sampler.maybe_sample(now=6.0) is not None


def test_sampler_series_field_selects_histogram_stat():
    registry = MetricsRegistry()
    hist = registry.histogram("serve/batch_latency_ms", buckets=(1.0, 8.0))
    sampler = MetricsSampler(registry, interval_s=0.5)
    sampler.sample(now=0.0)                # metric empty but present
    hist.observe(4.0)
    sampler.sample(now=1.0)
    series = sampler.series("serve/batch_latency_ms", field="p95")
    assert len(series) == 2 and series[1][1] > 0.0
    assert sampler.series("missing/metric") == []
    with pytest.raises(ValueError):
        MetricsSampler(registry, interval_s=0.0)


def test_sampler_thread_smoke():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    sampler = MetricsSampler(registry, interval_s=0.01, capacity=100)
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()                    # already running
    # Wait on the sample condition instead of sleeping a guessed time.
    assert sampler.wait_for_samples(2, timeout=5.0)
    sampler.stop()
    assert len(sampler) >= 2
    sampler.stop()                         # idempotent


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------
def test_metric_to_family_folds_stream_namespace():
    assert metric_to_family("serve/stream/s007/health") == (
        "repro_serve_stream_health", {"stream": "s007"})
    assert metric_to_family("detector/latency_ms") == (
        "repro_detector_latency_ms", {})
    family, labels = metric_to_family("serve/stream/weird id!/errors")
    assert labels == {"stream": "weird id!"}     # raw id kept in the label
    assert " " not in family and "!" not in family


def test_render_exposition_format():
    registry = MetricsRegistry()
    registry.counter("serve/samples_in").inc(7)
    registry.gauge("serve/stream/s000/health").set(0.0)
    registry.gauge("serve/stream/s001/health").set(2.0)
    hist = registry.histogram("serve/batch_latency_ms", buckets=(1.0, 4.0))
    for v in (0.5, 2.0, 9.0):
        hist.observe(v)
    fleet = Histogram(buckets=(1.0, 4.0))
    fleet.observe(0.5)
    text = render_exposition(
        registry, extra={"serve/fleet/window_latency_ms": fleet})

    assert "# TYPE repro_serve_samples_in counter" in text
    assert "repro_serve_samples_in 7" in text
    # Two streams, one family, one TYPE line, labelled series.
    assert text.count("# TYPE repro_serve_stream_health gauge") == 1
    assert 'repro_serve_stream_health{stream="s000"} 0' in text
    assert 'repro_serve_stream_health{stream="s001"} 2' in text
    # Histogram: cumulative buckets ending at +Inf == count, plus sum.
    assert 'repro_serve_batch_latency_ms_bucket{le="1"} 1' in text
    assert 'repro_serve_batch_latency_ms_bucket{le="4"} 2' in text
    assert 'repro_serve_batch_latency_ms_bucket{le="+Inf"} 3' in text
    assert "repro_serve_batch_latency_ms_count 3" in text
    assert "repro_serve_batch_latency_ms_sum 11.5" in text
    # The merged fleet histogram rode in through `extra`.
    assert 'repro_serve_fleet_window_latency_ms_bucket{le="+Inf"} 1' in text
    assert text.endswith("\n")


def test_render_exposition_type_conflict():
    registry = MetricsRegistry()
    registry.counter("serve/stream/a/thing").inc()
    registry.gauge("serve/stream/b/thing").set(1.0)
    with pytest.raises(ValueError, match="both"):
        render_exposition(registry)


def test_exposition_passes_the_lint(tmp_path):
    registry = MetricsRegistry()
    registry.counter("serve/samples_in").inc(3)
    for sid in ("s000", "s001"):
        registry.gauge(f"serve/stream/{sid}/health").set(0.0)  # metric-name: dynamic
    registry.histogram("serve/batch_latency_ms",
                       buckets=(1.0, 4.0)).observe(2.0)
    path = tmp_path / "exposition.prom"
    path.write_text(render_exposition(registry), encoding="utf-8")
    lint = subprocess.run(
        [sys.executable,
         str(_REPO_ROOT / "scripts" / "check_metric_names.py"),
         "--exposition", str(path)],
        capture_output=True, text=True,
    )
    assert lint.returncode == 0, lint.stdout + lint.stderr


def test_exposition_lint_catches_bad_text(tmp_path):
    bad = tmp_path / "bad.prom"
    # Undeclared family + stream id embedded in a family name.
    bad.write_text(
        "# TYPE repro_serve_stream_s007_health gauge\n"
        "repro_serve_stream_s007_health 1\n"
        "repro_undeclared_thing 2\n"
    )
    lint = subprocess.run(
        [sys.executable,
         str(_REPO_ROOT / "scripts" / "check_metric_names.py"),
         "--exposition", str(bad)],
        capture_output=True, text=True,
    )
    assert lint.returncode == 1
    assert "embeds a stream id" in lint.stdout
    assert "no # TYPE" in lint.stdout


def test_sampler_series_empty_single_and_rotated():
    registry = MetricsRegistry()
    counter = registry.counter("serve/samples_in")
    sampler = MetricsSampler(registry, interval_s=1.0, capacity=2)
    # Empty: no samples taken yet -> empty series, even for known names.
    assert sampler.series("serve/samples_in") == []
    assert sampler.series("missing/metric") == []
    # Single sample.
    counter.inc(5)
    sampler.sample(now=0.0)
    assert sampler.series("serve/samples_in") == [(0.0, 5)]
    # Rotation: capacity 2 keeps only the newest two points.
    counter.inc(5)
    sampler.sample(now=1.0)
    counter.inc(5)
    sampler.sample(now=2.0)
    assert sampler.series("serve/samples_in") == [(1.0, 10), (2.0, 15)]
    # A metric born after earlier samples appears only from its birth on.
    registry.counter("serve/late").inc()
    sampler.sample(now=3.0)
    assert sampler.series("serve/late") == [(3.0, 1)]


def test_merged_fleet_registry_exposition_is_lint_clean(tmp_path):
    """Regression: merging per-stream registries into a fleet registry
    and rendering one exposition yields a single TYPE header per family
    and passes the exposition lint."""
    fleet = MetricsRegistry()
    for sid in ("s000", "s001", "s002"):
        stream = MetricsRegistry()
        stream.counter("serve/samples_in").inc(10)
        stream.gauge(f"serve/stream/{sid}/health").set(0.0)  # metric-name: dynamic
        stream.gauge(f"alerts/stream/{sid}/state").set(2.0)  # metric-name: dynamic
        stream.histogram("serve/batch_latency_ms",
                         buckets=(1.0, 4.0)).observe(2.0)
        fleet.merge_entries(stream.entries())
    fleet.counter("alerts/raised").inc(2)
    text = render_exposition(fleet)
    assert "repro_serve_samples_in 30" in text     # counters summed
    type_lines = [line for line in text.splitlines()
                  if line.startswith("# TYPE ")]
    assert len(type_lines) == len(set(type_lines))  # no duplicate headers
    # Three streams fold into ONE family with a stream label each.
    assert text.count("# TYPE repro_serve_stream_health gauge") == 1
    assert text.count("# TYPE repro_alerts_stream_state gauge") == 1
    for sid in ("s000", "s001", "s002"):
        assert f'repro_alerts_stream_state{{stream="{sid}"}} 2' in text

    path = tmp_path / "fleet.prom"
    path.write_text(text, encoding="utf-8")
    lint = subprocess.run(
        [sys.executable,
         str(_REPO_ROOT / "scripts" / "check_metric_names.py"),
         "--exposition", str(path)],
        capture_output=True, text=True,
    )
    assert lint.returncode == 0, lint.stdout + lint.stderr
