"""Losses, optimizers, metrics, initializers and callbacks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import initializers, losses, metrics, optimizers
from repro.nn.callbacks import (
    CSVLogger,
    EarlyStopping,
    History,
    LambdaCallback,
    ReduceLROnPlateau,
)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
class TestBinaryCrossentropy:
    def test_matches_manual_value(self):
        loss = losses.BinaryCrossentropy()
        y = np.array([[1.0], [0.0]])
        p = np.array([[0.9], [0.2]])
        expected = -(np.log(0.9) + np.log(0.8)) / 2.0
        assert loss(y, p) == pytest.approx(expected, rel=1e-6)

    def test_weighting_scales_per_sample(self):
        loss = losses.BinaryCrossentropy()
        y = np.array([[1.0], [0.0]])
        p = np.array([[0.9], [0.2]])
        unweighted = loss(y, p)
        weighted = loss(y, p, sample_weight=np.array([2.0, 2.0]))
        assert weighted == pytest.approx(2 * unweighted, rel=1e-6)

    @given(st.floats(0.05, 0.95), st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_gradient_matches_numeric(self, p, label):
        loss = losses.BinaryCrossentropy()
        y = np.array([[float(label)]])
        pred = np.array([[p]])
        g = loss.grad(y, pred)[0, 0]
        eps = 1e-7
        numeric = (loss(y, pred + eps) - loss(y, pred - eps)) / (2 * eps)
        assert g == pytest.approx(numeric, rel=1e-3)

    def test_extreme_probabilities_are_finite(self):
        loss = losses.BinaryCrossentropy()
        y = np.array([[1.0], [0.0]])
        p = np.array([[0.0], [1.0]])
        assert np.isfinite(loss(y, p))
        assert np.all(np.isfinite(loss.grad(y, p)))


class TestOtherLosses:
    def test_mse_value_and_grad(self):
        loss = losses.MeanSquaredError()
        y = np.array([[1.0, 2.0]])
        p = np.array([[1.5, 1.0]])
        assert loss(y, p) == pytest.approx((0.25 + 1.0) / 2)
        np.testing.assert_allclose(loss.grad(y, p),
                                   2 * (p - y) / 2, rtol=1e-6)

    def test_categorical_crossentropy(self):
        loss = losses.CategoricalCrossentropy()
        y = np.array([[0.0, 1.0]])
        p = np.array([[0.3, 0.7]])
        assert loss(y, p) == pytest.approx(-np.log(0.7), rel=1e-6)

    def test_registry(self):
        assert isinstance(losses.get("bce"), losses.BinaryCrossentropy)
        assert isinstance(losses.get("mse"), losses.MeanSquaredError)
        with pytest.raises(ValueError, match="unknown loss"):
            losses.get("hinge")


# ---------------------------------------------------------------------------
# Optimizers
# ---------------------------------------------------------------------------
def _quadratic_descend(optimizer, steps=120):
    """Minimise f(w) = ||w - 3||^2 from w=0; returns final distance."""
    w = np.zeros(4)
    params = {"w": w}
    for _ in range(steps):
        grads = {"w": 2.0 * (w - 3.0)}
        optimizer.apply(params, grads)
    return float(np.abs(w - 3.0).max())


class TestOptimizers:
    @pytest.mark.parametrize(
        "opt",
        [
            optimizers.SGD(learning_rate=0.1),
            optimizers.SGD(learning_rate=0.05, momentum=0.9),
            optimizers.RMSprop(learning_rate=0.1),
            optimizers.Adam(learning_rate=0.2),
        ],
        ids=["sgd", "sgd-momentum", "rmsprop", "adam"],
    )
    def test_converges_on_quadratic(self, opt):
        assert _quadratic_descend(opt) < 1e-2

    def test_clipnorm_limits_update(self):
        opt = optimizers.SGD(learning_rate=1.0, clipnorm=1.0)
        w = np.zeros(3)
        opt.apply({"w": w}, {"w": np.array([30.0, 40.0, 0.0])})
        # Gradient norm 50 -> clipped to 1; step = lr * clipped grad.
        assert np.linalg.norm(w) == pytest.approx(1.0, rel=1e-6)

    def test_clipnorm_leaves_small_gradients_alone(self):
        opt = optimizers.SGD(learning_rate=1.0, clipnorm=100.0)
        w = np.zeros(2)
        opt.apply({"w": w}, {"w": np.array([0.3, 0.4])})
        assert np.linalg.norm(w) == pytest.approx(0.5, rel=1e-6)

    def test_adam_state_is_per_parameter(self):
        opt = optimizers.Adam(learning_rate=0.1)
        a, b = np.zeros(2), np.zeros(3)
        opt.apply({"a": a, "b": b}, {"a": np.ones(2), "b": np.zeros(3)})
        assert np.all(a != 0)
        assert np.all(b == 0)

    def test_invalid_hyperparams_rejected(self):
        with pytest.raises(ValueError):
            optimizers.SGD(learning_rate=-1)
        with pytest.raises(ValueError):
            optimizers.SGD(momentum=1.5)

    def test_registry(self):
        assert isinstance(optimizers.get("adam"), optimizers.Adam)
        with pytest.raises(ValueError, match="unknown optimizer"):
            optimizers.get("lion")


# ---------------------------------------------------------------------------
# Metrics / initializers
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_binary_accuracy(self):
        y = np.array([1, 0, 1, 0])
        p = np.array([0.9, 0.2, 0.4, 0.6])
        assert metrics.binary_accuracy(y, p) == pytest.approx(0.5)

    def test_accuracy_argmax(self):
        y = np.array([[1, 0], [0, 1]])
        p = np.array([[0.8, 0.2], [0.7, 0.3]])
        assert metrics.accuracy(y, p) == pytest.approx(0.5)

    def test_registry_error(self):
        with pytest.raises(ValueError):
            metrics.get("auc")


class TestInitializers:
    def test_glorot_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = initializers.glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit

    def test_orthogonal_is_orthonormal(self):
        rng = np.random.default_rng(0)
        w = np.asarray(initializers.orthogonal((32, 128), rng), dtype=np.float64)
        gram = w @ w.T
        np.testing.assert_allclose(gram, np.eye(32), atol=1e-5)

    def test_orthogonal_is_contiguous(self):
        # Regression: a transposed (non-contiguous) kernel silently broke
        # in-place optimizer views.
        w = initializers.orthogonal((8, 32), np.random.default_rng(0))
        assert w.flags["C_CONTIGUOUS"]

    def test_he_uniform_scale(self):
        rng = np.random.default_rng(0)
        w = initializers.he_uniform((1000, 10), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 1000) + 1e-9

    def test_conv_kernel_fans(self):
        rng = np.random.default_rng(0)
        w = initializers.glorot_uniform((5, 3, 16), rng)  # (k, cin, cout)
        limit = np.sqrt(6.0 / (5 * 3 + 5 * 16))
        assert np.abs(w).max() <= limit + 1e-9

    def test_registry(self):
        assert initializers.get("zeros") is initializers.zeros
        with pytest.raises(ValueError):
            initializers.get("lecun")


# ---------------------------------------------------------------------------
# Callbacks
# ---------------------------------------------------------------------------
class _FakeModel:
    def __init__(self):
        self.stop_training = False
        self.weights = [np.array([0.0])]
        self.optimizer = optimizers.SGD(learning_rate=0.1)

    def get_weights(self):
        return [w.copy() for w in self.weights]

    def set_weights(self, ws):
        self.weights = [np.asarray(w).copy() for w in ws]


class TestEarlyStopping:
    def test_stops_after_patience_and_restores_best(self):
        cb = EarlyStopping(monitor="val_loss", patience=2,
                           restore_best_weights=True)
        model = _FakeModel()
        cb.set_model(model)
        cb.on_train_begin()
        curve = [1.0, 0.5, 0.8, 0.9, 0.95]
        for epoch, value in enumerate(curve):
            model.weights = [np.array([float(epoch)])]
            cb.on_epoch_end(epoch, {"val_loss": value})
            if model.stop_training:
                break
        assert model.stop_training
        assert cb.best_epoch == 1
        cb.on_train_end()
        assert model.weights[0][0] == 1.0  # epoch-1 weights restored

    def test_improvement_resets_patience(self):
        cb = EarlyStopping(patience=2, restore_best_weights=False)
        model = _FakeModel()
        cb.set_model(model)
        cb.on_train_begin()
        for epoch, value in enumerate([1.0, 0.9, 0.95, 0.8, 0.85]):
            cb.on_epoch_end(epoch, {"val_loss": value})
        assert not model.stop_training

    def test_max_mode(self):
        cb = EarlyStopping(monitor="val_acc", patience=1, mode="max",
                           restore_best_weights=False)
        model = _FakeModel()
        cb.set_model(model)
        cb.on_train_begin()
        cb.on_epoch_end(0, {"val_acc": 0.8})
        cb.on_epoch_end(1, {"val_acc": 0.7})
        assert model.stop_training

    def test_missing_monitor_is_ignored(self):
        cb = EarlyStopping(patience=1)
        model = _FakeModel()
        cb.set_model(model)
        cb.on_train_begin()
        cb.on_epoch_end(0, {"loss": 1.0})
        assert not model.stop_training


class TestOtherCallbacks:
    def test_history_records_all_keys(self):
        cb = History()
        cb.on_train_begin()
        cb.on_epoch_end(0, {"loss": 1.0, "val_loss": 2.0})
        cb.on_epoch_end(1, {"loss": 0.5, "val_loss": 1.5})
        assert cb.history["loss"] == [1.0, 0.5]
        assert cb.epochs == [0, 1]

    def test_csv_logger_writes_rows(self, tmp_path):
        path = tmp_path / "log.csv"
        cb = CSVLogger(path)
        cb.on_train_begin()
        cb.on_epoch_end(0, {"loss": 1.0})
        cb.on_epoch_end(1, {"loss": 0.5})
        cb.on_train_end()
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "epoch,loss"
        assert len(lines) == 3

    def test_reduce_lr_on_plateau(self):
        model = _FakeModel()
        cb = ReduceLROnPlateau(patience=1, factor=0.5)
        cb.set_model(model)
        cb.on_train_begin()
        cb.on_epoch_end(0, {"val_loss": 1.0})
        cb.on_epoch_end(1, {"val_loss": 1.2})
        assert model.optimizer.learning_rate == pytest.approx(0.05)
        # A second plateau epoch halves it again.
        cb.on_epoch_end(2, {"val_loss": 1.3})
        assert model.optimizer.learning_rate == pytest.approx(0.025)

    def test_lambda_callback(self):
        seen = []
        cb = LambdaCallback(on_epoch_end=lambda e, logs: seen.append(e))
        cb.on_epoch_end(3, {})
        assert seen == [3]
