"""Property-based tests of the event-level evaluation invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import evaluate_events
from repro.core.preprocessing import SegmentSet


def _make_segments(rng, n_events, segments_per_event):
    rows_X, y, subject, task, event, is_fall, trig = [], [], [], [], [], [], []
    for e in range(n_events):
        fall = bool(rng.integers(0, 2))
        task_id = int(rng.integers(20, 35)) if fall else int(rng.integers(1, 20))
        for s in range(segments_per_event):
            rows_X.append(np.zeros((4, 9), dtype=np.float32))
            y.append(int(rng.integers(0, 2)) if fall else 0)
            subject.append(f"S{e % 3}")
            task.append(task_id)
            event.append(f"E{e}")
            is_fall.append(fall)
            trig.append(bool(rng.integers(0, 2)) if fall else True)
    return SegmentSet(
        X=np.stack(rows_X),
        y=np.array(y),
        subject=np.array(subject, dtype=object),
        task_id=np.array(task),
        event_id=np.array(event, dtype=object),
        event_is_fall=np.array(is_fall),
        trigger_valid=np.array(trig),
    )


class TestEventInvariants:
    @given(seed=st.integers(0, 300),
           n_events=st.integers(1, 12),
           per_event=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_rates_bounded_and_counts_conserved(self, seed, n_events,
                                                per_event):
        rng = np.random.default_rng(seed)
        segments = _make_segments(rng, n_events, per_event)
        probs = rng.random(len(segments))
        report = evaluate_events(segments, probs)
        assert len(report.outcomes) == n_events
        assert (len(report.fall_events) + len(report.adl_events)
                == n_events)
        for rate in (report.fall_miss_rate, report.adl_false_positive_rate):
            assert np.isnan(rate) or 0.0 <= rate <= 100.0

    @given(seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_all_zero_probabilities_miss_everything(self, seed):
        rng = np.random.default_rng(seed)
        segments = _make_segments(rng, 6, 4)
        report = evaluate_events(segments, np.zeros(len(segments)))
        if report.fall_events:
            assert report.fall_miss_rate == 100.0
        if report.adl_events:
            assert report.adl_false_positive_rate == 0.0

    @given(seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_all_one_probabilities(self, seed):
        rng = np.random.default_rng(seed)
        segments = _make_segments(rng, 6, 4)
        report = evaluate_events(segments, np.ones(len(segments)))
        # Every ADL fires; falls fire unless no in-time segment exists.
        if report.adl_events:
            assert report.adl_false_positive_rate == 100.0
        for outcome in report.fall_events:
            mask = segments.event_id == outcome.event_id
            has_in_time = segments.trigger_valid[mask].any()
            assert outcome.triggered == bool(has_in_time)

    @given(seed=st.integers(0, 100),
           threshold=st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_raising_threshold_never_adds_detections(self, seed, threshold):
        rng = np.random.default_rng(seed)
        segments = _make_segments(rng, 8, 4)
        probs = rng.random(len(segments))
        low = evaluate_events(segments, probs, threshold=threshold)
        high = evaluate_events(segments, probs,
                               threshold=min(threshold + 0.3, 1.0))
        assert high.adl_false_positive_rate <= low.adl_false_positive_rate
        if low.fall_events:
            assert high.fall_miss_rate >= low.fall_miss_rate

    def test_per_task_rates_average_to_overall(self):
        rng = np.random.default_rng(5)
        segments = _make_segments(rng, 20, 3)
        probs = rng.random(len(segments))
        report = evaluate_events(segments, probs)
        per_task = report.per_task_miss()
        # Weighted by per-task event counts, rates recompose exactly.
        total, weight = 0.0, 0
        for tid, rate in per_task.items():
            count = sum(1 for o in report.fall_events if o.task_id == tid)
            total += rate * count
            weight += count
        if weight:
            assert total / weight == pytest.approx(report.fall_miss_rate)
