"""Graceful-shutdown regression tests: SIGTERM the long-running CLI
commands via subprocess and assert a clean exit with complete artifacts
(sealed event store, flushed incidents, stopped HTTP server)."""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.alerts import EventStore, EventStoreConfig, load_segment

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="POSIX signal semantics")


def _spawn(*args):
    env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"),
               PYTHONUNBUFFERED="1")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=str(_REPO_ROOT), env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )


def _read_until(proc, marker: str, timeout_s: float = 120.0) -> list[str]:
    """Collect stdout lines until one contains ``marker``.

    The reader runs on a thread so a wedged child fails the test at the
    deadline instead of hanging the suite on a blocking readline.
    """
    lines: list[str] = []
    found = threading.Event()

    def _reader():
        for line in proc.stdout:
            lines.append(line)
            if marker in line:
                found.set()
                return

    thread = threading.Thread(target=_reader, daemon=True)
    thread.start()
    if not found.wait(timeout_s):
        proc.kill()
        pytest.fail(f"never saw {marker!r}; output so far:\n"
                    + "".join(lines))
    return lines


def test_serve_http_sigterm_seals_store_and_stops_cleanly(tmp_path):
    store_dir = tmp_path / "events"
    proc = _spawn("serve-http", "--streams", "2", "--duration", "2",
                  "--port", "0", "--serve-for", "120",
                  "--store-dir", str(store_dir))
    try:
        _read_until(proc, "observability endpoint at")
        proc.send_signal(signal.SIGTERM)
        rest, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 0, rest
    assert "stopped cleanly" in rest
    assert "sealed store" in rest
    # The active segment was sealed: every on-disk segment is complete
    # and parseable, and a fresh writer starts after the sealed one.
    reader = EventStore(EventStoreConfig(root=str(store_dir)))
    indices = reader.segment_indices()
    assert len(indices) >= 2        # sealed segment(s) + fresh active
    for index in indices[:-1]:
        load_segment(reader.segment_path(index))   # strict parse
    assert reader.corrupt_lines == 0
    assert any(e["kind"] == "alert" for e in reader.events())


def test_tail_sigterm_flushes_incidents_and_exits_zero(tmp_path):
    incident_dir = tmp_path / "incidents"
    # A long workload so SIGTERM lands mid-feed; the interrupted run must
    # still flush recorder incidents and render complete artifacts.
    proc = _spawn("tail", "--streams", "4", "--duration", "600",
                  "--seed", "3", "--incident-dir", str(incident_dir))
    try:
        _read_until(proc, "repro tail")     # first dashboard frame
        time.sleep(0.5)                     # let the feed get going
        proc.send_signal(signal.SIGTERM)
        rest, _ = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 0, rest
    assert "[interrupted: incidents flushed" in rest
    # The final frame rendered after the early stop.
    assert "fleet window" in rest
