"""Observability HTTP endpoint + end-to-end fleet alerting.

The end-to-end test is the PR's acceptance demo: a ServeEngine fleet
under a builtin fault scenario produces deduped alerts in the event
store, queryable over HTTP ``/alerts``, with escalation transitions
visible in ``/metrics`` — and the exposition passes the metric-name
lint with no duplicate family headers.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.alerts import (
    AlertConfig,
    AlertManager,
    EscalationConfig,
    EventStore,
    EventStoreConfig,
    ObservabilityServer,
)
from repro.experiments import AlertEvalConfig, MagnitudeProbeModel
from repro.experiments.alerts_runner import _fleet_for
from repro.faults import builtin_scenarios
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeConfig, ServeEngine

_REPO_ROOT = pathlib.Path(__file__).parent.parent


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


@pytest.fixture()
def server():
    """A server over a tiny populated manager; stopped after the test."""
    registry = MetricsRegistry()
    manager = AlertManager(
        AlertConfig(escalation=EscalationConfig(confirm_detections=1)),
        registry=registry,
    )
    manager.observe("s0", t=1.0, probability=0.9)
    manager.observe("s0", t=1.2, probability=0.95)
    registry.counter("serve/samples_in").inc(7)
    srv = ObservabilityServer(registry=registry, manager=manager,
                              dashboard=lambda: "dash frame", port=0)
    srv.start()
    yield srv
    srv.stop()


def test_routes(server):
    base = server.url
    status, body = _get(base + "/metrics")
    assert status == 200
    assert "repro_alerts_raised 1" in body
    assert "repro_serve_samples_in 7" in body

    status, body = _get(base + "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok" and health["alerts_active"] == 1

    status, body = _get(base + "/alerts")
    assert status == 200
    alerts = json.loads(body)
    assert alerts["count"] == 0               # no store attached
    assert [a["stream"] for a in alerts["active"]] == ["s0"]

    status, body = _get(base + "/dashboard")
    assert status == 200 and body == "dash frame"

    status, body = _get(base + "/")
    assert status == 200
    assert "/metrics" in json.loads(body)["endpoints"]

    status, body = _get(base + "/nope")
    assert status == 404
    assert "endpoints" in json.loads(body)


def test_alerts_query_validation(server):
    status, body = _get(server.url + "/alerts?limit=notanumber")
    assert status == 400
    assert "limit" in json.loads(body)["error"]
    status, body = _get(server.url + "/alerts?bogus=1")
    assert status == 400
    assert "bogus" in json.loads(body)["error"]
    # Errors above were client errors, not handler crashes.
    assert server.errors == 0


def test_missing_backends_404():
    srv = ObservabilityServer(port=0)
    srv.start()
    try:
        for route in ("/metrics", "/alerts", "/dashboard"):
            status, body = _get(srv.url + route)
            assert status == 404, route
        status, body = _get(srv.url + "/healthz")
        assert status == 200                  # liveness needs no backend
    finally:
        srv.stop()


def test_handler_error_contained():
    def broken_dashboard():
        raise RuntimeError("render exploded")

    registry = MetricsRegistry()
    registry.counter("serve/samples_in").inc()
    srv = ObservabilityServer(registry=registry, dashboard=broken_dashboard,
                              port=0)
    srv.start()
    try:
        status, body = _get(srv.url + "/dashboard")
        assert status == 500
        assert json.loads(body)["error"] == "internal error"
        assert srv.errors == 1
        # The failure did not poison other routes.
        status, _ = _get(srv.url + "/metrics")
        assert status == 200
    finally:
        srv.stop()


def test_double_start_rejected():
    srv = ObservabilityServer(port=0)
    srv.start()
    try:
        with pytest.raises(RuntimeError, match="already started"):
            srv.start()
    finally:
        srv.stop()
    srv.stop()                                 # idempotent


# ----------------------------------------------------------------------
# end to end: engine fleet -> alerts -> store -> HTTP -> lint
# ----------------------------------------------------------------------
def test_fleet_alerts_end_to_end(tmp_path):
    config = AlertEvalConfig(duration_s=8.0)
    registry = MetricsRegistry()
    engine = ServeEngine(
        MagnitudeProbeModel(),
        ServeConfig(detector=config.detector,
                    alerts=AlertConfig(
                        escalation=config.alerts.escalation,
                        dedup_horizon_s=config.alerts.dedup_horizon_s,
                        store=EventStoreConfig(
                            root=str(tmp_path / "events")))),
        registry=registry,
    )
    scenario = builtin_scenarios(seed=config.seed)["nan_burst"]
    streams = _fleet_for(scenario, config)
    hop = config.detector.hop_samples
    n = max(len(t) for _, _, t in streams.values())
    for i in range(n):
        for stream_id, (accel, gyro, t) in streams.items():
            if i < len(t):
                engine.submit(stream_id, accel[i], gyro[i], t[i])
        if (i + 1) % hop == 0:
            engine.step()
    engine.step()

    # The fall stream paged critical; its second pulse deduped; the
    # fall on the degraded (nan_burst) stream paged suspect only.
    report = engine.alerts.report()
    assert report["raised"] == 2
    assert report["deduped"] >= 1
    assert report["errors"] == 0
    by_stream = {a.stream: a for a in engine.alerts.alerts}
    assert by_stream["s000"].severity == "critical"
    assert by_stream["s000"].repeats >= 1
    assert by_stream["s001"].severity == "suspect"
    assert by_stream["s001"].worst_health == "degraded"
    assert "s002" not in by_stream and "s003" not in by_stream

    srv = ObservabilityServer(
        registry=registry,
        extra_metrics=lambda: {
            "serve/fleet/window_latency_ms": engine.fleet_latency()},
        manager=engine.alerts,
        port=0,
    )
    srv.start()
    try:
        # Stored alerts stream back over HTTP, filters included.
        status, body = _get(srv.url + "/alerts?kind=alert")
        assert status == 200
        alerts = json.loads(body)
        assert {e["stream"] for e in alerts["events"]} == {"s000", "s001"}
        status, body = _get(srv.url
                            + "/alerts?stream=s001&severity=suspect")
        assert status == 200
        assert json.loads(body)["count"] >= 1

        # Escalation transitions are visible in /metrics, and the
        # exposition is lint-clean with one TYPE header per family.
        status, exposition = _get(srv.url + "/metrics")
        assert status == 200
        assert "repro_alerts_transitions " in exposition
        assert "repro_alerts_transitions_alert" in exposition
    finally:
        srv.stop()

    path = tmp_path / "exposition.prom"
    path.write_text(exposition, encoding="utf-8")
    lint = subprocess.run(
        [sys.executable,
         str(_REPO_ROOT / "scripts" / "check_metric_names.py"),
         "--exposition", str(path)],
        capture_output=True, text=True,
    )
    assert lint.returncode == 0, lint.stdout + lint.stderr
    type_lines = [line for line in exposition.splitlines()
                  if line.startswith("# TYPE ")]
    assert len(type_lines) == len(set(type_lines))

    # The store survives the process: a fresh reader sees the alerts.
    reader = EventStore(EventStoreConfig(root=str(tmp_path / "events")))
    kinds = {e["kind"] for e in reader.events()}
    assert {"escalation", "alert", "repeat"} <= kinds
