"""Tests for ``repro.parallel.cache``: lossless round-trips, validation,
eviction, and the environment switches."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.pipeline import build_merged_dataset
from repro.core.preprocessing import PreprocessConfig, build_segments
from repro.obs import get_registry
from repro.parallel import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    ArtifactCache,
    artifact_key,
    code_version_salt,
    default_cache,
)
from repro.parallel.cache import ARTIFACT_VERSION

DATASET_CONFIG = {
    "kfall_subjects": 1,
    "selfcollected_subjects": 1,
    "trials_per_task": 1,
    "duration_scale": 0.2,
    "seed": 0,
}


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_merged_dataset(**DATASET_CONFIG)


@pytest.fixture(scope="module")
def tiny_segments_merged(tiny_dataset):
    return build_segments(tiny_dataset, PreprocessConfig())


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(root=tmp_path / "artifacts", enabled=True)


class TestArtifactKey:
    def test_stable_and_order_insensitive(self):
        a = artifact_key("dataset", {"x": 1, "y": 2})
        b = artifact_key("dataset", {"y": 2, "x": 1})
        assert a == b
        assert len(a) == 32

    def test_config_kind_and_salt_discriminate(self):
        base = artifact_key("dataset", {"x": 1})
        assert artifact_key("dataset", {"x": 2}) != base
        assert artifact_key("segments", {"x": 1}) != base
        assert artifact_key("dataset", {"x": 1}, salt="deadbeef") != base
        assert artifact_key("dataset", {"x": 1},
                            salt=code_version_salt()) == base


class TestDatasetRoundTrip:
    def test_bit_identical(self, cache, tiny_dataset):
        cache.put("dataset", DATASET_CONFIG, tiny_dataset)
        loaded = cache.get("dataset", DATASET_CONFIG)
        assert loaded is not None
        assert loaded.name == tiny_dataset.name
        assert loaded.frame == tiny_dataset.frame
        assert len(loaded) == len(tiny_dataset)
        for fresh, back in zip(tiny_dataset, loaded):
            assert back.subject_id == fresh.subject_id
            assert back.task_id == fresh.task_id
            assert back.dataset == fresh.dataset
            assert back.meta == fresh.meta
            for attr in ("accel", "gyro", "euler"):
                a, b = getattr(fresh, attr), getattr(back, attr)
                assert a.dtype == b.dtype
                np.testing.assert_array_equal(a, b)

    def test_config_change_misses(self, cache, tiny_dataset):
        cache.put("dataset", DATASET_CONFIG, tiny_dataset)
        other = dict(DATASET_CONFIG, seed=1)
        assert cache.get("dataset", other) is None


class TestSegmentsRoundTrip:
    def test_bit_identical(self, cache, tiny_segments_merged):
        segments = tiny_segments_merged
        config = {"window_ms": 400, "overlap": 0.5}
        cache.put("segments", config, segments)
        loaded = cache.get("segments", config)
        assert loaded is not None
        assert loaded.X.dtype == segments.X.dtype
        np.testing.assert_array_equal(loaded.X, segments.X)
        np.testing.assert_array_equal(loaded.y, segments.y)
        assert loaded.subject.dtype == np.dtype(object)
        assert loaded.event_id.dtype == np.dtype(object)
        assert list(loaded.subject) == list(segments.subject)
        assert list(loaded.event_id) == list(segments.event_id)
        np.testing.assert_array_equal(loaded.task_id, segments.task_id)
        np.testing.assert_array_equal(loaded.event_is_fall,
                                      segments.event_is_fall)
        np.testing.assert_array_equal(loaded.trigger_valid,
                                      segments.trigger_valid)


class TestValidation:
    CONFIG = {"window_ms": 400, "overlap": 0.5}

    def _entry_paths(self, cache):
        ((kind, key, _, _),) = cache.entries()
        return cache._paths(kind, key)

    def test_corrupt_payload_rebuilt_not_trusted(self, cache,
                                                 tiny_segments_merged):
        cache.put("segments", self.CONFIG, tiny_segments_merged)
        payload, _ = self._entry_paths(cache)
        payload.write_bytes(b"not an npz file")
        before = get_registry().counter("cache/invalid/segments").value
        assert cache.get("segments", self.CONFIG) is None
        assert get_registry().counter("cache/invalid/segments").value == \
            before + 1
        assert not payload.exists()
        # get_or_build recovers by rebuilding.
        rebuilt = cache.get_or_build("segments", self.CONFIG,
                                     lambda: tiny_segments_merged)
        np.testing.assert_array_equal(rebuilt.X, tiny_segments_merged.X)
        assert cache.get("segments", self.CONFIG) is not None

    def test_stale_version_sidecar_rebuilt(self, cache, tiny_segments_merged):
        cache.put("segments", self.CONFIG, tiny_segments_merged)
        payload, sidecar = self._entry_paths(cache)
        meta = json.loads(sidecar.read_text())
        meta["version"] = ARTIFACT_VERSION + 1
        sidecar.write_text(json.dumps(meta))
        assert cache.get("segments", self.CONFIG) is None
        assert not payload.exists() and not sidecar.exists()

    def test_unreadable_sidecar_rebuilt(self, cache, tiny_segments_merged):
        cache.put("segments", self.CONFIG, tiny_segments_merged)
        _, sidecar = self._entry_paths(cache)
        sidecar.write_text("{truncated")
        assert cache.get("segments", self.CONFIG) is None

    def test_missing_entry_is_plain_miss(self, cache):
        assert cache.get("segments", {"window_ms": 1}) is None


class TestMaintenance:
    def test_prune_evicts_oldest_first(self, cache, tiny_segments_merged):
        import os

        for i in range(3):
            cache.put("segments", {"window_ms": 100 + i},
                      tiny_segments_merged)
        # Make entry mtimes strictly ordered regardless of clock precision.
        for age, (kind, key, _, _) in enumerate(reversed(cache.entries())):
            payload, _ = cache._paths(kind, key)
            os.utime(payload, (1_000_000 + age, 1_000_000 + age))
        oldest = min(cache.entries(), key=lambda e: e[3])[1]
        removed = cache.prune(max_entries=2)
        assert removed == 1
        assert oldest not in [key for _, key, _, _ in cache.entries()]

    def test_clear_and_stats(self, cache, tiny_segments_merged):
        cache.put("segments", {"window_ms": 1}, tiny_segments_merged)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["by_kind"]["segments"]["entries"] == 1
        assert cache.clear() == 1
        assert cache.entries() == []


class TestEnvironment:
    def test_disabled_cache_noops(self, tmp_path, tiny_segments_merged):
        cache = ArtifactCache(root=tmp_path, enabled=False)
        assert cache.put("segments", {"w": 1}, tiny_segments_merged) is None
        assert cache.get("segments", {"w": 1}) is None
        assert cache.entries() == []
        built = cache.get_or_build("segments", {"w": 1},
                                   lambda: tiny_segments_merged)
        assert built is tiny_segments_merged
        assert cache.entries() == []

    def test_default_cache_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        cache = default_cache()
        assert cache.root == tmp_path / "elsewhere"
        assert cache.enabled
        monkeypatch.setenv(CACHE_ENV, "0")
        assert not default_cache().enabled
