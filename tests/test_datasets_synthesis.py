"""Synthetic signal generation: physics, annotations, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.subjects import make_subjects
from repro.datasets.synthesis.generator import synthesize_recording, trial_seed
from repro.datasets.synthesis.noise import SensorNoiseModel
from repro.datasets.synthesis.trajectory import MotionBuilder
from repro.datasets.tasks import TASKS, fall_ids


@pytest.fixture(scope="module")
def subject():
    return make_subjects("TS", 1, seed=7)[0]


# ---------------------------------------------------------------------------
# MotionBuilder
# ---------------------------------------------------------------------------
class TestMotionBuilder:
    def test_static_script_measures_gravity(self):
        b = MotionBuilder(fs=100.0)
        b.hold(2.0)
        out = b.render()
        np.testing.assert_allclose(out["accel"],
                                   np.tile([0, 0, 1.0], (200, 1)), atol=1e-9)
        np.testing.assert_allclose(out["gyro"], 0.0, atol=1e-9)

    def test_tilt_rotates_gravity_vector(self):
        b = MotionBuilder(fs=100.0)
        b.hold(0.5).move(1.0, pitch=90.0).hold(0.5)
        out = b.render()
        np.testing.assert_allclose(out["accel"][-1], [1.0, 0, 0], atol=1e-6)
        # |accel| stays 1 g through a pure rotation.
        np.testing.assert_allclose(
            np.linalg.norm(out["accel"], axis=1), 1.0, atol=1e-9
        )

    def test_gyro_is_angle_derivative(self):
        b = MotionBuilder(fs=100.0)
        b.hold(0.2).move(1.0, pitch=45.0, ease="linear").hold(0.2)
        out = b.render()
        # Linear ease: pitch rate = 45 deg/s during the move.
        mid = out["gyro"][50:110, 1]
        np.testing.assert_allclose(mid, 45.0, atol=1.0)

    def test_gravity_dip_reduces_magnitude(self):
        b = MotionBuilder(fs=100.0)
        b.hold(2.0)
        b.gravity_dip(0.8, 1.4, floor=0.1)
        out = b.render()
        mag = np.linalg.norm(out["accel"], axis=1)
        assert mag[105] == pytest.approx(0.1, abs=0.02)
        assert mag[20] == pytest.approx(1.0, abs=1e-6)

    def test_burst_peak_amplitude(self):
        b = MotionBuilder(fs=1000.0)
        b.hold(1.0)
        b.burst(0.5, 0.06, "az", 5.0, shape="decay")
        out = b.render()
        extra = out["accel"][:, 2] - 1.0
        assert extra.max() == pytest.approx(5.0, rel=0.05)

    def test_marks_map_to_sample_indices(self):
        b = MotionBuilder(fs=100.0)
        b.hold(1.0).mark("onset").move(0.5, pitch=80).mark("impact").hold(1.0)
        out = b.render()
        assert out["marks"]["onset"] == 100
        assert out["marks"]["impact"] == 150

    def test_validation_errors(self):
        b = MotionBuilder(fs=100.0)
        with pytest.raises(ValueError):
            b.move(0.0, pitch=10)
        with pytest.raises(ValueError):
            b.burst(0.1, 0.05, "pitch", 1.0)
        with pytest.raises(ValueError):
            b.gravity_dip(1.0, 0.5, 0.2)
        with pytest.raises(ValueError):
            b.oscillate(0, 1, "warp", 1.0, 1.0)
        with pytest.raises(ValueError):
            b.move(0.5, pitch=10, ease="bouncy")


# ---------------------------------------------------------------------------
# Fall physics
# ---------------------------------------------------------------------------
class TestFallSignatures:
    @pytest.mark.parametrize("task_id", fall_ids())
    def test_every_fall_type_has_fall_physics(self, task_id, subject):
        rec = synthesize_recording(TASKS[task_id], subject, base_seed=3)
        assert rec.is_fall
        assert 0 < rec.fall_onset < rec.impact < rec.n_samples
        mag = np.linalg.norm(rec.accel, axis=1)
        # Free-fall dip between onset and impact.
        assert mag[rec.fall_onset : rec.impact].min() < 0.6
        # Impact transient after the falling phase.
        window = mag[rec.impact : rec.impact + 15]
        assert window.max() > 2.0
        # Falling phase duration within the paper's 150-1100 ms envelope.
        assert 0.15 <= (rec.impact - rec.fall_onset) / rec.fs <= 1.1

    def test_height_falls_are_fast_and_deep(self, subject):
        durations, floors = [], []
        for trial in range(6):
            rec = synthesize_recording(TASKS[39], subject, trial=trial,
                                       base_seed=5)
            durations.append((rec.impact - rec.fall_onset) / rec.fs)
            mag = np.linalg.norm(rec.accel, axis=1)
            floors.append(mag[rec.fall_onset : rec.impact].min())
        # Drops from height: short pre-impact phase, true free fall.
        assert np.mean(durations) < 0.55
        assert np.mean(floors) < 0.15

    def test_post_fall_phase_is_still(self, subject):
        rec = synthesize_recording(TASKS[30], subject, base_seed=3)
        tail = np.linalg.norm(rec.accel[-80:], axis=1)
        assert tail.std() < 0.1

    def test_orientation_changes_through_fall(self, subject):
        rec = synthesize_recording(TASKS[30], subject, base_seed=3)
        # Forward fall: pitch near 0 pre-fall, large when lying.
        assert abs(rec.euler[: rec.fall_onset, 0].mean()) < 25.0
        assert abs(rec.euler[-30:, 0].mean()) > 50.0


class TestAdlSignatures:
    def test_adls_have_no_annotations(self, subject):
        for tid in (1, 6, 13):
            rec = synthesize_recording(TASKS[tid], subject, base_seed=3)
            assert not rec.is_fall
            assert rec.fall_onset is None and rec.impact is None

    def test_standing_is_quiet(self, subject):
        rec = synthesize_recording(TASKS[1], subject, base_seed=3)
        mag = np.linalg.norm(rec.accel, axis=1)
        assert abs(mag.mean() - 1.0) < 0.05
        assert mag.std() < 0.08

    def test_walking_has_cadence_peak(self, subject):
        rec = synthesize_recording(TASKS[6], subject, base_seed=3)
        az = rec.accel[:, 2] - rec.accel[:, 2].mean()
        spectrum = np.abs(np.fft.rfft(az * np.hanning(az.size)))
        freqs = np.fft.rfftfreq(az.size, d=1.0 / rec.fs)
        peak = freqs[np.argmax(spectrum[(freqs > 0.8) & (freqs < 4.0)].max()
                               == spectrum)]
        assert 0.8 < peak < 4.0

    def test_jump_contains_flight_and_landing(self, subject):
        rec = synthesize_recording(TASKS[4], subject, base_seed=3)
        mag = np.linalg.norm(rec.accel, axis=1)
        assert mag.min() < 0.4       # flight (fall-like!)
        assert mag.max() > 1.8       # landing
        assert not rec.is_fall       # ...but never annotated as a fall

    def test_stumble_recovers(self, subject):
        rec = synthesize_recording(TASKS[10], subject, base_seed=3)
        # After the stumble the subject keeps walking upright.
        assert abs(rec.euler[-50:, 0].mean()) < 25.0


# ---------------------------------------------------------------------------
# Determinism / noise model
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_same_signal(self, subject):
        a = synthesize_recording(TASKS[30], subject, trial=2, base_seed=9)
        b = synthesize_recording(TASKS[30], subject, trial=2, base_seed=9)
        np.testing.assert_array_equal(a.accel, b.accel)
        assert a.fall_onset == b.fall_onset

    def test_different_trials_differ(self, subject):
        a = synthesize_recording(TASKS[30], subject, trial=0, base_seed=9)
        b = synthesize_recording(TASKS[30], subject, trial=1, base_seed=9)
        assert a.n_samples != b.n_samples or not np.array_equal(a.accel, b.accel)

    def test_trial_seed_is_order_free(self):
        assert trial_seed(1, "S01", 5, 0) == trial_seed(1, "S01", 5, 0)
        assert trial_seed(1, "S01", 5, 0) != trial_seed(1, "S01", 5, 1)
        assert trial_seed(1, "S01", 5, 0) != trial_seed(2, "S01", 5, 0)

    def test_duration_scale_shrinks_recordings(self, subject):
        long = synthesize_recording(TASKS[1], subject, base_seed=1,
                                    duration_scale=1.0)
        short = synthesize_recording(TASKS[1], subject, base_seed=1,
                                     duration_scale=0.3)
        assert short.n_samples < long.n_samples

    def test_invalid_duration_scale(self, subject):
        with pytest.raises(ValueError):
            synthesize_recording(TASKS[1], subject, duration_scale=0.0)


class TestNoiseModel:
    def test_quantisation_grid(self):
        model = SensorNoiseModel(accel_resolution_g=0.001)
        rng = np.random.default_rng(0)
        accel, _ = model.apply(np.zeros((100, 3)), np.zeros((100, 3)), rng)
        remainder = np.abs(accel / 0.001 - np.round(accel / 0.001))
        assert remainder.max() < 1e-9

    def test_clipping_at_fullscale(self):
        model = SensorNoiseModel()
        rng = np.random.default_rng(0)
        big = np.full((10, 3), 100.0)
        accel, gyro = model.apply(big, np.full((10, 3), 5000.0), rng)
        assert accel.max() <= 16.0
        assert gyro.max() <= 2000.0

    def test_noise_scale_increases_variance(self):
        model = SensorNoiseModel()
        clean = np.tile([0, 0, 1.0], (2000, 1))
        a1, _ = model.apply(clean, np.zeros_like(clean),
                            np.random.default_rng(1), noise_scale=1.0)
        a2, _ = model.apply(clean, np.zeros_like(clean),
                            np.random.default_rng(1), noise_scale=3.0)
        assert a2.std() > a1.std()

    def test_inputs_not_mutated(self):
        model = SensorNoiseModel()
        clean = np.tile([0, 0, 1.0], (50, 1))
        original = clean.copy()
        model.apply(clean, np.zeros_like(clean), np.random.default_rng(0))
        np.testing.assert_array_equal(clean, original)
