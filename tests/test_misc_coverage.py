"""Cross-cutting coverage: hyper-parameter variants, dropout quantization,
pipeline conveniences, miscellaneous API edges."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import PreprocessConfig, build_merged_segments
from repro.core.architecture import CnnHyperParams, build_lightweight_cnn
from repro.edge import deployment_report
from repro.quant import QuantizedModel


class TestHyperParameterVariants:
    @pytest.mark.parametrize("filters,kernel,pool", [(8, 3, 2), (32, 7, 3)])
    def test_variant_builds_trains_and_deploys(self, filters, kernel, pool):
        hyper = CnnHyperParams(conv_filters=filters, kernel_size=kernel,
                               pool_size=pool)
        model = build_lightweight_cnn(40, hyper=hyper, seed=0)
        model.compile("adam", "bce")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 40, 9)).astype(np.float32)
        y = rng.integers(0, 2, size=(64, 1)).astype(float)
        model.fit(x, y, epochs=1, batch_size=32, seed=0)
        qm = QuantizedModel.convert(model, x)
        report = deployment_report(qm)
        assert report["fits_flash"] and report["fits_ram"]

    def test_dropout_variant_quantizes(self):
        hyper = CnnHyperParams(dropout=0.3)
        model = build_lightweight_cnn(20, hyper=hyper, seed=0)
        model.compile("adam", "bce")
        x = np.random.default_rng(0).normal(size=(32, 20, 9)).astype(np.float32)
        qm = QuantizedModel.convert(model, x)
        probs = qm.predict(x[:4]).reshape(-1)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_bigger_model_costs_more_flash(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 40, 9)).astype(np.float32)
        sizes = []
        for filters in (8, 32):
            model = build_lightweight_cnn(
                40, hyper=CnnHyperParams(conv_filters=filters), seed=0
            )
            model.compile("adam", "bce")
            qm = QuantizedModel.convert(model, x)
            sizes.append(deployment_report(qm)["flash_kib"])
        assert sizes[1] > sizes[0]


class TestPipelineConvenience:
    def test_build_merged_segments_one_call(self):
        segments = build_merged_segments(
            PreprocessConfig(window_ms=200),
            kfall_subjects=1,
            selfcollected_subjects=1,
            duration_scale=0.3,
            seed=13,
        )
        assert len(segments) > 0
        assert segments.X.shape[1:] == (20, 9)
        assert len(segments.subjects) == 2


class TestModelApiEdges:
    def test_predict_on_empty_batch(self):
        model = build_lightweight_cnn(20, seed=0)
        out = model.predict(np.zeros((0, 20, 9), dtype=np.float32))
        assert out.shape[0] == 0

    def test_evaluate_with_sample_weight(self):
        model = build_lightweight_cnn(20, seed=0).compile("adam", "bce")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 20, 9)).astype(np.float32)
        y = rng.integers(0, 2, size=(16, 1)).astype(float)
        unweighted = model.evaluate(x, y)["loss"]
        weighted = model.evaluate(x, y, sample_weight=np.full(16, 2.0))["loss"]
        assert weighted == pytest.approx(2 * unweighted, rel=1e-5)

    def test_fit_with_extra_callbacks(self):
        from repro.nn.callbacks import LambdaCallback

        model = build_lightweight_cnn(20, seed=0).compile("adam", "bce")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 20, 9)).astype(np.float32)
        y = rng.integers(0, 2, size=(32, 1)).astype(float)
        epochs_seen = []
        model.fit(x, y, epochs=2, batch_size=16,
                  callbacks=[LambdaCallback(
                      on_epoch_end=lambda e, logs: epochs_seen.append(e))],
                  seed=0)
        assert epochs_seen == [0, 1]

    def test_metrics_logged_during_fit(self):
        model = build_lightweight_cnn(20, seed=0).compile(
            "adam", "bce", metrics=["binary_accuracy"]
        )
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 20, 9)).astype(np.float32)
        y = rng.integers(0, 2, size=(32, 1)).astype(float)
        history = model.fit(x, y, epochs=2, batch_size=16, seed=0)
        assert "binary_accuracy" in history.history
        assert len(history.history["binary_accuracy"]) == 2
