"""Quantization: primitives, fixed-point requantization, model parity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core.architecture import build_lightweight_cnn
from repro.quant import (
    FixedPointMultiplier,
    QuantizedModel,
    QuantParams,
    activation_qparams,
    calibrate_activations,
    dequantize,
    quantize,
    quantize_weights_per_channel,
    requantize,
)


class TestQuantPrimitives:
    def test_round_trip_error_bounded_by_half_step(self):
        params = activation_qparams(-3.0, 5.0)
        x = np.linspace(-3.0, 5.0, 1001)
        err = np.abs(dequantize(quantize(x, params), params) - x)
        assert err.max() <= params.scale / 2 + 1e-12

    def test_zero_maps_exactly(self):
        for lo, hi in [(-3.0, 5.0), (0.5, 9.0), (-7.0, -0.1)]:
            params = activation_qparams(lo, hi)
            assert dequantize(quantize(np.array([0.0]), params), params)[0] == 0.0

    def test_saturation(self):
        params = activation_qparams(-1.0, 1.0)
        q = quantize(np.array([100.0, -100.0]), params)
        assert q[0] == 127 and q[1] == -128

    def test_degenerate_range_handled(self):
        params = activation_qparams(2.0, 2.0)
        assert params.scale > 0

    def test_per_channel_weight_scales(self):
        w = np.zeros((3, 2, 4))
        w[..., 0] = 1.0
        w[..., 1] = 0.01
        w[..., 2] = -2.0
        w[..., 3] = 0.5
        q, scales = quantize_weights_per_channel(w, channel_axis=2)
        assert q.dtype == np.int8
        np.testing.assert_allclose(scales,
                                   np.array([1.0, 0.01, 2.0, 0.5]) / 127)
        # Peak values quantize to exactly +/-127.
        assert q[..., 0].max() == 127
        assert q[..., 2].min() == -127

    def test_invalid_qparams_rejected(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0, zero_point=0)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=300)


class TestFixedPointMultiplier:
    @given(st.floats(1e-6, 1e4))
    @settings(max_examples=100, deadline=None)
    def test_encoding_accuracy(self, value):
        fp = FixedPointMultiplier.from_real(value)
        assert fp.real_value == pytest.approx(value, rel=1e-7)
        assert 2**30 <= fp.m0 < 2**31

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            FixedPointMultiplier.from_real(0.0)

    @given(
        acc=st.integers(-(2**24), 2**24),
        mult=st.floats(1e-4, 2.0),
        zp=st.integers(-128, 127),
    )
    @settings(max_examples=150, deadline=None)
    def test_requantize_matches_float_reference(self, acc, mult, zp):
        fp = FixedPointMultiplier.from_real(mult)
        got = int(requantize(np.array([acc], dtype=np.int64), fp, zp)[0])
        expected = int(np.clip(round(acc * mult) + zp, -128, 127))
        # Fixed-point rounding may differ from float by at most one LSB.
        assert abs(got - expected) <= 1


class TestQuantizedModel:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(0)
        model = build_lightweight_cnn(20, seed=1)
        model.compile(nn.optimizers.Adam(learning_rate=3e-3),
                      "binary_crossentropy")
        x = rng.normal(size=(500, 20, 9)).astype(np.float32)
        y = (x[:, :, 0].mean(axis=1) > 0).astype(float)[:, None]
        model.fit(x, y, epochs=8, batch_size=64, seed=0)
        return model, x, y

    def test_probability_parity(self, trained):
        model, x, _ = trained
        qm = QuantizedModel.convert(model, x[:200])
        pf = model.predict(x[200:]).reshape(-1)
        pq = qm.predict(x[200:]).reshape(-1)
        assert np.abs(pf - pq).mean() < 0.05
        agreement = np.mean((pf >= 0.5) == (pq >= 0.5))
        assert agreement > 0.97

    def test_accuracy_parity(self, trained):
        model, x, y = trained
        qm = QuantizedModel.convert(model, x[:200])
        yf = (model.predict(x[200:]).reshape(-1) >= 0.5)
        yq = (qm.predict(x[200:]).reshape(-1) >= 0.5)
        target = y[200:].reshape(-1) >= 0.5
        acc_f = np.mean(yf == target)
        acc_q = np.mean(yq == target)
        assert abs(acc_f - acc_q) < 0.02  # "performance unchanged"

    def test_weight_byte_accounting(self, trained):
        model, x, _ = trained
        qm = QuantizedModel.convert(model, x[:100])
        # int8 weights: one byte per float parameter (biases counted
        # separately as int32).
        n_weights = sum(
            layer.params["W"].size for layer in model.layers
            if "W" in layer.params
        )
        n_biases = sum(
            layer.params["b"].size for layer in model.layers
            if "b" in layer.params
        )
        assert qm.weight_bytes == n_weights
        assert qm.bias_bytes == n_biases * 4

    def test_macs_scale_with_window(self):
        rng = np.random.default_rng(0)
        macs = []
        for window in (20, 40):
            model = build_lightweight_cnn(window, seed=1)
            model.compile("adam", "bce")
            x = rng.normal(size=(50, window, 9)).astype(np.float32)
            macs.append(QuantizedModel.convert(model, x).total_macs)
        assert macs[1] > macs[0]

    def test_batch_independence(self, trained):
        model, x, _ = trained
        qm = QuantizedModel.convert(model, x[:100])
        single = np.concatenate([qm.predict(x[i : i + 1]) for i in
                                 range(200, 210)]).reshape(-1)
        batched = qm.predict(x[200:210]).reshape(-1)
        np.testing.assert_allclose(single, batched, atol=1e-12)

    def test_input_shape_validation(self, trained):
        model, x, _ = trained
        qm = QuantizedModel.convert(model, x[:50])
        with pytest.raises(ValueError, match="per-sample shape"):
            qm.predict(np.zeros((2, 10, 9)))

    def test_calibration_requires_data(self, trained):
        model, x, _ = trained
        with pytest.raises(ValueError, match="empty"):
            calibrate_activations(model, x[:0])

    def test_unsupported_layer_rejected(self):
        inp = nn.Input((10, 4))
        h = nn.layers.LSTM(4, seed=0)(inp)
        out = nn.layers.Dense(1, activation="sigmoid", seed=1)(h)
        model = nn.Model(inp, out).compile("adam", "bce")
        x = np.zeros((4, 10, 4), dtype=np.float32)
        with pytest.raises(ValueError, match="no int8 lowering"):
            QuantizedModel.convert(model, x)

    def test_integer_tensors_on_datapath(self, trained):
        # The executor must hold int8 between ops (deployability proof).
        model, x, _ = trained
        qm = QuantizedModel.convert(model, x[:50])
        values = {qm.input_uid: quantize(x[:2], qm.input_params)}
        assert values[qm.input_uid].dtype == np.int8
        for op in qm.ops:
            out = op.run([values[uid] for uid in op.input_uids])
            assert out.dtype == np.int8, f"{op.name} leaked {out.dtype}"
            values[op.output_uid] = out
