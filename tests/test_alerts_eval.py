"""Scenario-driven alert eval, its report, dashboard pane, and CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alerts import AlertConfig, EscalationConfig
from repro.cli import build_parser
from repro.eval.reports import render_alert_report
from repro.experiments import (
    AlertEvalConfig,
    MagnitudeProbeModel,
    run_alert_eval,
)
from repro.serve import TailConfig, run_tail


@pytest.fixture(scope="module")
def eval_results(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("alert-stores")
    return run_alert_eval(
        AlertEvalConfig(duration_s=6.0, store_dir=str(store_dir)),
        scenarios=["nan_burst", "gyro_dead"],
    )


def test_probe_model_maps_peak_magnitude():
    model = MagnitudeProbeModel(lo_g=1.0, hi_g=3.0)
    quiet = np.full((1, 4, 6), 0.1)
    quiet[0, :, 2] = 1.0                        # gravity only
    spike = quiet.copy()
    spike[0, 2, 2] = 3.5
    probs = model.predict(np.concatenate([quiet, spike]))
    assert probs.shape == (2, 1)
    assert probs[0, 0] < 0.05 and probs[1, 0] == 1.0
    assert model.predict(np.zeros((0, 4, 6))).shape == (0, 1)
    with pytest.raises(ValueError, match="hi_g > lo_g"):
        MagnitudeProbeModel(lo_g=2.0, hi_g=2.0)


def test_eval_differentiates_scenarios(eval_results):
    clean = eval_results["clean"]
    nan_burst = eval_results["scenarios"]["nan_burst"]
    gyro_dead = eval_results["scenarios"]["gyro_dead"]
    # Clean: both fall streams page critical, second pulse dedups.
    assert clean["raised"] == 2 and clean["critical"] == 2
    assert clean["deduped"] >= 1
    assert clean["alert_streams"] == ["s000", "s001"]
    # nan_burst: the fall on the degraded stream demotes to suspect.
    assert nan_burst["suspect"] == 1 and nan_burst["critical"] == 1
    assert "degraded" in nan_burst["worst_healths"]
    # gyro_dead starves the detector of windows: s001 never pages.
    assert gyro_dead["alert_streams"] == ["s000"]
    # Stores were written per scenario.
    for condition in (clean, nan_burst, gyro_dead):
        assert condition["store_events"] > 0
        assert condition["errors"] == 0


def test_eval_rejects_unknown_scenarios():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_alert_eval(AlertEvalConfig(duration_s=1.0),
                       scenarios=["quantum_flu"])


def test_eval_config_validation():
    with pytest.raises(ValueError, match="n_streams"):
        AlertEvalConfig(n_streams=0)
    with pytest.raises(ValueError, match="faulted_streams"):
        AlertEvalConfig(n_streams=2, faulted_streams=5)
    with pytest.raises(ValueError, match="duration_s"):
        AlertEvalConfig(duration_s=0.0)


def test_alert_report_renders_every_condition(eval_results):
    report = render_alert_report(eval_results)
    lines = report.splitlines()
    assert lines[0].startswith("Alert-pipeline behaviour")
    for name in ("clean", "nan_burst", "gyro_dead"):
        assert any(line.startswith(name) for line in lines), name
    assert "confirm 1 in 1.5s" in lines[-1]
    assert "dedup 4.0s" in lines[-1]


def test_dashboard_renders_alert_pane():
    config = TailConfig(
        n_streams=4, duration_s=4.0, seed=11,
        alerts=AlertConfig(
            escalation=EscalationConfig(confirm_window_s=1.5,
                                        confirm_detections=1,
                                        auto_resolve_s=2.0)),
    )
    result = run_tail(MagnitudeProbeModel(), config)
    frame = result["final_frame"]
    assert "alerts" in frame and "raised" in frame
    assert "a-000000" in frame                 # at least one alert row
    # Without alerts armed the pane stays out (historical frames intact).
    plain = run_tail(MagnitudeProbeModel(),
                     TailConfig(n_streams=2, duration_s=2.0))
    assert "a-000000" not in plain["final_frame"]


def test_cli_parses_new_commands():
    parser = build_parser()
    args = parser.parse_args(["alerts", "--scenarios", "spikes",
                              "--streams", "6", "--store-dir", "/tmp/x"])
    assert args.command == "alerts" and args.streams == 6
    assert args.scenarios == ["spikes"]
    args = parser.parse_args(["serve-http", "--port", "0",
                              "--serve-for", "1.5"])
    assert args.command == "serve-http"
    assert args.port == 0 and args.serve_for == 1.5
    args = parser.parse_args(["faults", "--max-incidents", "4"])
    assert args.max_incidents == 4
