"""Sequential API and the accelerometer-only (PIPTO-style) detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.thresholds import AccelerationWindowDetector
from repro.datasets.subjects import make_subjects
from repro.datasets.synthesis.generator import synthesize_recording
from repro.datasets.tasks import TASKS


class TestSequential:
    def test_builds_and_predicts(self):
        model = nn.Sequential((6, 9), [
            nn.layers.Flatten(),
            nn.layers.Dense(8, activation="relu", seed=0),
            nn.layers.Dense(1, activation="sigmoid", seed=1),
        ])
        out = model.predict(np.zeros((3, 6, 9), dtype=np.float32))
        assert out.shape == (3, 1)

    def test_equivalent_to_functional(self):
        seq = nn.Sequential((5,), [nn.layers.Dense(4, activation="tanh",
                                                   seed=7)])
        inp = nn.Input((5,))
        out = nn.layers.Dense(4, activation="tanh", seed=7)(inp)
        functional = nn.Model(inp, out)
        x = np.random.default_rng(0).normal(size=(2, 5)).astype(np.float32)
        np.testing.assert_allclose(seq.predict(x), functional.predict(x),
                                   rtol=1e-6)

    def test_trains(self):
        model = nn.Sequential((4,), [
            nn.layers.Dense(8, activation="relu", seed=0),
            nn.layers.Dense(1, activation="sigmoid", seed=1),
        ]).compile("adam", "bce")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 4)).astype(np.float32)
        y = (x[:, 0] > 0).astype(float)[:, None]
        history = model.fit(x, y, epochs=10, batch_size=16, seed=0)
        assert history.history["loss"][-1] < history.history["loss"][0]

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            nn.Sequential((4,), [])


class TestAccelerationWindowDetector:
    @pytest.fixture(scope="class")
    def subject(self):
        return make_subjects("PT", 1, seed=3)[0]

    def test_fires_on_falls(self, subject):
        hits = 0
        for tid in (30, 32, 34):
            rec = synthesize_recording(TASKS[tid], subject, base_seed=8)
            if AccelerationWindowDetector().first_trigger(rec) is not None:
                hits += 1
        assert hits >= 2

    def test_quiet_standing_silent(self, subject):
        rec = synthesize_recording(TASKS[1], subject, base_seed=8,
                                   duration_scale=0.3)
        assert AccelerationWindowDetector().first_trigger(rec) is None

    def test_trigger_is_causal_index(self, subject):
        rec = synthesize_recording(TASKS[30], subject, base_seed=8)
        trigger = AccelerationWindowDetector().first_trigger(rec)
        if trigger is not None:
            assert 0 <= trigger < rec.n_samples

    def test_uses_only_the_accelerometer(self, subject):
        """Zeroing gyro and Euler channels must not change the verdict."""
        rec = synthesize_recording(TASKS[30], subject, base_seed=8)
        blinded = rec.with_signals(gyro=np.zeros_like(rec.gyro),
                                   euler=np.zeros_like(rec.euler))
        detector = AccelerationWindowDetector()
        assert detector.first_trigger(rec) == detector.first_trigger(blinded)

    def test_stricter_range_fires_later_or_never(self, subject):
        rec = synthesize_recording(TASKS[30], subject, base_seed=8)
        lax = AccelerationWindowDetector(range_g=0.1).first_trigger(rec)
        strict = AccelerationWindowDetector(range_g=0.6).first_trigger(rec)
        if lax is not None and strict is not None:
            assert strict >= lax
