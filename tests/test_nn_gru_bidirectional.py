"""GRU / Bidirectional layers: gradients, semantics, training."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from tests.test_nn_gradients import TOL, analytic_vs_numeric


class TestGruGradients:
    @pytest.mark.parametrize("return_sequences", [False, True])
    def test_gru_gradcheck(self, return_sequences):
        def build(i):
            h = nn.layers.GRU(5, return_sequences=return_sequences, seed=1)(i)
            if return_sequences:
                h = nn.layers.Flatten()(h)
            return nn.layers.Dense(2, seed=2)(h)

        assert analytic_vs_numeric(build, (6, 4)) < TOL

    def test_bidirectional_gru_gradcheck(self):
        def build(i):
            h = nn.layers.Bidirectional(lambda s: nn.layers.GRU(4, seed=s),
                                        seed=3)(i)
            return nn.layers.Dense(2, seed=2)(h)

        assert analytic_vs_numeric(build, (6, 3)) < TOL

    def test_bidirectional_lstm_sequences_gradcheck(self):
        def build(i):
            h = nn.layers.Bidirectional(
                lambda s: nn.layers.LSTM(3, return_sequences=True, seed=s),
                seed=3,
            )(i)
            h = nn.layers.Flatten()(h)
            return nn.layers.Dense(2, seed=2)(h)

        assert analytic_vs_numeric(build, (5, 3)) < TOL


class TestGruSemantics:
    def test_output_shapes(self):
        last = nn.layers.GRU(7, seed=0)(nn.Input((10, 4)))
        assert last.shape == (7,)
        seq = nn.layers.GRU(7, return_sequences=True, seed=0)(
            nn.Input((10, 4))
        )
        assert seq.shape == (10, 7)

    def test_zero_input_zero_state_is_bounded(self):
        layer = nn.layers.GRU(4, seed=0)
        layer(nn.Input((5, 3)))
        y = layer.forward([np.zeros((2, 5, 3), dtype=np.float32)])
        assert np.all(np.abs(y) < 1.0)

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            nn.layers.GRU(0)

    def test_rank_validation(self):
        with pytest.raises(ValueError, match="time, features"):
            nn.layers.GRU(4, seed=0)(nn.Input((5,)))


class TestBidirectionalSemantics:
    def test_output_doubles_units(self):
        node = nn.layers.Bidirectional(lambda s: nn.layers.GRU(6, seed=s),
                                       seed=0)(nn.Input((8, 3)))
        assert node.shape == (12,)

    def test_sequences_output_shape(self):
        node = nn.layers.Bidirectional(
            lambda s: nn.layers.GRU(6, return_sequences=True, seed=s), seed=0
        )(nn.Input((8, 3)))
        assert node.shape == (8, 12)

    def test_backward_direction_sees_reversed_input(self):
        # A palindromic input must produce identical fw/bw halves.
        layer = nn.layers.Bidirectional(lambda s: nn.layers.GRU(4, seed=7),
                                        seed=0)
        layer(nn.Input((5, 2)))
        # Identical seeds in both directions: fw==bw iff input palindromic.
        x = np.zeros((1, 5, 2), dtype=np.float32)
        x[0, :, 0] = [1, 2, 3, 2, 1]
        y = layer.forward([x])
        np.testing.assert_allclose(y[0, :4], y[0, 4:], atol=1e-6)

    def test_param_count_doubles(self):
        bidi = nn.layers.Bidirectional(lambda s: nn.layers.GRU(4, seed=s),
                                       seed=0)
        bidi(nn.Input((5, 3)))
        single = nn.layers.GRU(4, seed=0)
        single(nn.Input((5, 3)))
        assert bidi.count_params() == 2 * single.count_params()

    def test_set_weights_reaches_children(self):
        def build(seed):
            inp = nn.Input((5, 3))
            h = nn.layers.Bidirectional(lambda s: nn.layers.GRU(4, seed=s),
                                        seed=seed)(inp)
            out = nn.layers.Dense(1, seed=seed + 1)(h)
            return nn.Model(inp, out)

        a, b = build(11), build(99)
        x = np.random.default_rng(0).normal(size=(3, 5, 3)).astype(np.float32)
        assert not np.allclose(a.predict(x), b.predict(x))
        b.set_weights(a.get_weights())
        np.testing.assert_allclose(a.predict(x), b.predict(x), atol=1e-6)

    def test_requires_recurrent_layer(self):
        with pytest.raises(TypeError, match="return_sequences"):
            nn.layers.Bidirectional(lambda s: nn.layers.Dense(4, seed=s))

    def test_direction_mismatch_rejected(self):
        toggles = iter([True, False])

        def factory(seed):
            return nn.layers.GRU(4, return_sequences=next(toggles), seed=seed)

        with pytest.raises(ValueError, match="agree"):
            nn.layers.Bidirectional(factory)


class TestGruTraining:
    def test_gru_learns_order_sensitive_problem(self):
        rng = np.random.default_rng(0)
        n, time = 200, 8
        x = rng.normal(size=(n, time, 3)).astype(np.float32)
        first = x[:, : time // 2, 0].mean(axis=1)
        second = x[:, time // 2 :, 0].mean(axis=1)
        y = (second > first).astype(float)[:, None]
        inp = nn.Input((time, 3))
        h = nn.layers.GRU(10, seed=1)(inp)
        out = nn.layers.Dense(1, activation="sigmoid", seed=2)(h)
        model = nn.Model(inp, out).compile(
            nn.optimizers.Adam(learning_rate=0.01, clipnorm=5.0), "bce"
        )
        model.fit(x, y, epochs=40, batch_size=32, seed=0)
        p = model.predict(x).reshape(-1)
        assert np.mean((p >= 0.5) == (y.reshape(-1) >= 0.5)) > 0.85

    def test_cnn_bigru_builder_runs(self):
        from repro.core.baselines import build_cnn_bigru

        model = build_cnn_bigru(20, output_bias=-2.0, seed=0)
        x = np.zeros((2, 20, 9), dtype=np.float32)
        p = model.predict(x)
        assert p.shape == (2, 1)
        # Heavier than the proposed CNN head-to-head is the point.
        from repro.core.architecture import build_lightweight_cnn
        assert model.count_params() > 0
