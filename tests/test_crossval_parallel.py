"""Parallel ``cross_validate`` must be bit-identical to serial, survive
worker crashes, and compose with the on-disk artifact cache."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import nn
from repro.core.crossval import cross_validate
from repro.core.preprocessing import SegmentSet
from repro.core.trainer import TrainingConfig
from repro.obs import get_registry
from repro.experiments import (
    QUICK,
    build_experiment_dataset,
    reset_experiment_caches,
)
from repro.experiments import runners as _runners


def _make_segments(n_subjects=6, per_subject=24, window=40, channels=9,
                   seed=0) -> SegmentSet:
    """A synthetic SegmentSet with falls for every subject."""
    rng = np.random.default_rng(seed)
    n = n_subjects * per_subject
    y = np.zeros(n, dtype=int)
    subject, event_id = [], []
    for s in range(n_subjects):
        lo = s * per_subject
        y[lo:lo + per_subject // 3] = 1
        subject += [f"S{s:02d}"] * per_subject
        event_id += [f"S{s:02d}/e{i}" for i in range(per_subject)]
    X = rng.normal(size=(n, window, channels)).astype(np.float32)
    # Give the positives a learnable offset so training isn't degenerate.
    X[y == 1] += 0.5
    return SegmentSet(
        X=X,
        y=y,
        subject=np.array(subject, dtype=object),
        task_id=np.arange(n) % 5,
        event_id=np.array(event_id, dtype=object),
        event_is_fall=y == 1,
        trigger_valid=np.ones(n, dtype=bool),
    )


def _tiny_builder(window, channels, output_bias=None, seed=0):
    inp = nn.Input((window, channels))
    h = nn.layers.Conv1D(4, 3, activation="relu", seed=seed)(inp)
    h = nn.layers.GlobalMaxPool1D()(h)
    out = nn.layers.Dense(1, activation="sigmoid", seed=seed + 1)(h)
    return nn.Model(inp, out)


def _crashy_builder(window, channels, output_bias=None, seed=0):
    """Kills the pool worker; behaves like ``_tiny_builder`` in the parent,
    so the serial retry of every fold still completes."""
    if os.environ.get("REPRO_PARALLEL_WORKER") == "1":
        os._exit(7)
    return _tiny_builder(window, channels, output_bias=output_bias, seed=seed)


_CONFIG = TrainingConfig(epochs=2, patience=2, batch_size=32, augment=False,
                         seed=0)


def _run(builder, n_jobs):
    segments = _make_segments()
    return cross_validate(builder, segments, k=3, n_val_subjects=1,
                          config=_CONFIG, seed=3, n_jobs=n_jobs)


def _assert_folds_equal(serial, other):
    assert len(serial) == len(other)
    for a, b in zip(serial, other):
        assert a.fold == b.fold
        assert a.epochs_trained == b.epochs_trained
        assert a.metrics == b.metrics
        np.testing.assert_array_equal(a.probabilities, b.probabilities)
        np.testing.assert_array_equal(a.val_probabilities,
                                      b.val_probabilities)


class TestParallelCrossValidate:
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_bit_identical_to_serial(self, n_jobs):
        serial = _run(_tiny_builder, n_jobs=1)
        pooled = _run(_tiny_builder, n_jobs=n_jobs)
        _assert_folds_equal(serial, pooled)

    def test_worker_crash_completes_all_folds(self):
        serial = _run(_tiny_builder, n_jobs=1)
        crashed = _run(_crashy_builder, n_jobs=2)
        _assert_folds_equal(serial, crashed)

    def test_env_jobs_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        serial = _run(_tiny_builder, n_jobs=1)
        env_pooled = _run(_tiny_builder, n_jobs=None)
        _assert_folds_equal(serial, env_pooled)


class TestDiskCacheIntegration:
    TINY = QUICK.with_overrides(name="tinycache", kfall_subjects=1,
                                selfcollected_subjects=1, duration_scale=0.2)

    def test_dataset_and_segments_served_from_disk(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifacts"))
        monkeypatch.setenv("REPRO_CACHE", "1")
        registry = get_registry()

        def counts():
            return {event: registry.counter(
                f"cache/{event}/dataset").value  # metric-name: dynamic
                for event in ("hit", "miss", "write")}

        reset_experiment_caches()
        before = counts()
        first = build_experiment_dataset(self.TINY)
        cold = counts()
        assert cold["miss"] == before["miss"] + 1
        assert cold["write"] == before["write"] + 1

        first_segments = _runners._segments_for(first, 400, 0.5)

        # Drop the in-process memos: the second build can only be satisfied
        # by the on-disk artifacts.
        reset_experiment_caches()
        second = build_experiment_dataset(self.TINY)
        warm = counts()
        assert warm["hit"] == cold["hit"] + 1
        assert warm["miss"] == cold["miss"]
        assert second is not first
        assert len(second) == len(first)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.accel, b.accel)

        seg_hits = registry.counter("cache/hit/segments").value
        second_segments = _runners._segments_for(second, 400, 0.5)
        assert registry.counter("cache/hit/segments").value == seg_hits + 1
        np.testing.assert_array_equal(second_segments.X, first_segments.X)

        reset_experiment_caches()
