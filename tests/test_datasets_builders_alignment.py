"""Dataset builders, schema containers, alignment and labeling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    CANONICAL_FRAME,
    Dataset,
    KFALL_FRAME,
    KFALL_FRAME_ROTATION,
    LabelPolicy,
    Recording,
    align_dataset,
    align_recording,
    build_kfall,
    build_selfcollected,
    estimate_frame_rotation,
    estimate_gravity_direction,
    sample_labels,
)
from repro.signal.rotation import is_rotation_matrix


# ---------------------------------------------------------------------------
# Recording / Dataset schema
# ---------------------------------------------------------------------------
def _dummy_recording(n=100, fall=None, **kwargs):
    accel = np.tile([0, 0, 1.0], (n, 1))
    defaults = dict(
        subject_id="S1", task_id=1, trial=0, fs=100.0,
        accel=accel, gyro=np.zeros((n, 3)), euler=np.zeros((n, 3)),
    )
    if fall:
        defaults.update(fall_onset=fall[0], impact=fall[1], task_id=30)
    defaults.update(kwargs)
    return Recording(**defaults)


class TestRecording:
    def test_signals_layout_is_accel_gyro_euler(self):
        rec = _dummy_recording()
        rec.gyro[:, 0] = 7.0
        rec.euler[:, 2] = 9.0
        sig = rec.signals()
        assert sig.shape == (100, 9)
        assert sig[0, 2] == 1.0     # accel z
        assert sig[0, 3] == 7.0     # gyro x
        assert sig[0, 8] == 9.0     # yaw

    def test_annotation_ordering_enforced(self):
        with pytest.raises(ValueError, match="out of order"):
            _dummy_recording(fall=(50, 40))

    def test_annotations_must_come_together(self):
        with pytest.raises(ValueError, match="together"):
            Recording(
                subject_id="S", task_id=30, trial=0, fs=100.0,
                accel=np.zeros((10, 3)), gyro=np.zeros((10, 3)),
                euler=np.zeros((10, 3)), fall_onset=2, impact=None,
            )

    def test_shape_validation(self):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            Recording(
                subject_id="S", task_id=1, trial=0, fs=100.0,
                accel=np.zeros((10, 2)), gyro=np.zeros((10, 3)),
                euler=np.zeros((10, 3)),
            )

    def test_event_id_is_unique_per_trial(self):
        a = _dummy_recording(trial=0)
        b = _dummy_recording(trial=1)
        assert a.event_id != b.event_id


class TestDataset:
    def test_filters_and_views(self):
        recs = [
            _dummy_recording(subject_id="A"),
            _dummy_recording(subject_id="B", fall=(40, 60)),
        ]
        ds = Dataset("test", recs)
        assert ds.subjects == ["A", "B"]
        assert len(ds.falls()) == 1
        assert len(ds.adls()) == 1
        assert len(ds.by_subject(["A"])) == 1

    def test_merge_requires_same_frame(self):
        a = Dataset("a", [_dummy_recording()], frame=CANONICAL_FRAME)
        b = Dataset("b", [_dummy_recording(frame="kfall")], frame="kfall")
        with pytest.raises(ValueError, match="different frames"):
            Dataset.merge("m", a, b)

    def test_merge_concatenates(self):
        a = Dataset("a", [_dummy_recording()])
        b = Dataset("b", [_dummy_recording(subject_id="S2")])
        merged = Dataset.merge("m", a, b)
        assert len(merged) == 2

    def test_summary_counts(self):
        ds = Dataset("t", [_dummy_recording(), _dummy_recording(fall=(40, 60))])
        s = ds.summary()
        assert s["falls"] == 1 and s["adls"] == 1 and s["recordings"] == 2


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
class TestBuilders:
    def test_selfcollected_composition(self, tiny_selfcollected):
        ds = tiny_selfcollected
        assert ds.frame == CANONICAL_FRAME
        assert len(ds.task_ids) == 44
        assert len(ds.subjects) == 2
        # 21 fall tasks x 2 subjects.
        assert len(ds.falls()) == 42
        for rec in ds:
            assert rec.accel_unit == "g"

    def test_kfall_composition(self, tiny_kfall):
        ds = tiny_kfall
        assert ds.frame == KFALL_FRAME
        assert len(ds.task_ids) == 36
        for rec in ds:
            assert rec.accel_unit == "m/s^2"
            assert rec.frame == KFALL_FRAME

    def test_kfall_gravity_in_rotated_axis(self, tiny_kfall):
        standing = next(r for r in tiny_kfall if r.task_id == 1)
        mean = standing.accel.mean(axis=0)
        # Rotated 90 deg about x: gravity lands on -y, in m/s^2.
        assert mean[1] == pytest.approx(-9.8, abs=0.8)

    def test_kfall_rejects_non_kfall_tasks(self):
        with pytest.raises(ValueError, match="not part of the KFall"):
            build_kfall(n_subjects=1, task_ids=(39,))

    def test_builders_are_deterministic(self):
        a = build_selfcollected(n_subjects=1, duration_scale=0.3, seed=5,
                                task_ids=(1, 30))
        b = build_selfcollected(n_subjects=1, duration_scale=0.3, seed=5,
                                task_ids=(1, 30))
        np.testing.assert_array_equal(a[0].accel, b[0].accel)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            build_selfcollected(n_subjects=0)
        with pytest.raises(ValueError):
            build_kfall(n_subjects=1, trials_per_task=0)


# ---------------------------------------------------------------------------
# Alignment
# ---------------------------------------------------------------------------
class TestAlignment:
    def test_gravity_direction_estimate(self, tiny_kfall):
        direction = estimate_gravity_direction(tiny_kfall)
        # KFall frame: gravity along -y.
        assert direction[1] == pytest.approx(-1.0, abs=0.05)

    def test_frame_rotation_is_a_rotation(self, tiny_kfall):
        rot = estimate_frame_rotation(tiny_kfall)
        assert is_rotation_matrix(rot, atol=1e-6)

    def test_aligned_standing_measures_canonical_gravity(self, tiny_kfall):
        aligned = align_dataset(tiny_kfall)
        assert aligned.frame == CANONICAL_FRAME
        standing = next(r for r in aligned if r.task_id == 1)
        mean = standing.accel.mean(axis=0)
        assert mean[2] == pytest.approx(1.0, abs=0.08)
        assert abs(mean[0]) < 0.12 and abs(mean[1]) < 0.12
        assert standing.accel_unit == "g"

    def test_alignment_with_known_rotation_restores_signal(self, tiny_kfall):
        # Using the exact generator rotation, alignment must invert it.
        rot = KFALL_FRAME_ROTATION.T  # inverse of canonical->kfall
        rec = tiny_kfall[0]
        aligned = align_recording(rec, rot)
        # Gravity magnitude 1 g in the canonical frame during stillness.
        mag = np.linalg.norm(aligned.accel, axis=1)
        assert np.median(mag) == pytest.approx(1.0, abs=0.05)

    def test_annotations_survive_alignment(self, tiny_kfall):
        fall = next(r for r in tiny_kfall if r.is_fall)
        aligned = align_recording(fall, KFALL_FRAME_ROTATION.T)
        assert aligned.fall_onset == fall.fall_onset
        assert aligned.impact == fall.impact

    def test_canonical_dataset_passes_through(self, tiny_selfcollected):
        assert align_dataset(tiny_selfcollected) is tiny_selfcollected

    def test_missing_standing_task_rejected(self, tiny_kfall):
        no_standing = tiny_kfall.filter(lambda r: r.task_id != 1)
        with pytest.raises(ValueError, match="standing"):
            estimate_gravity_direction(no_standing)


# ---------------------------------------------------------------------------
# Labeling
# ---------------------------------------------------------------------------
class TestLabeling:
    def test_adl_labels_all_negative_and_valid(self):
        labels, valid = sample_labels(_dummy_recording())
        assert labels.sum() == 0
        assert valid.all()

    def test_fall_label_window_respects_truncation(self):
        rec = _dummy_recording(n=200, fall=(100, 160))
        labels, valid = sample_labels(rec, LabelPolicy(airbag_ms=150.0,
                                                       exclude_impact_ms=200.0))
        # 150 ms = 15 samples at 100 Hz: positives on [100, 145).
        assert labels[99] == 0
        assert labels[100] == 1
        assert labels[144] == 1
        assert labels[145] == 0
        # Exclusion zone [145, 180).
        assert not valid[145:180].any()
        assert valid[180:].all()

    def test_zero_truncation_labels_whole_fall(self):
        rec = _dummy_recording(n=200, fall=(100, 160))
        labels, valid = sample_labels(rec, LabelPolicy(airbag_ms=0.0,
                                                       exclude_impact_ms=0.0))
        assert labels[100:160].all()
        assert valid.all()

    def test_short_fall_fully_truncated(self):
        # Falling phase shorter than the airbag time: nothing usable.
        rec = _dummy_recording(n=200, fall=(100, 110))
        labels, valid = sample_labels(rec, LabelPolicy(airbag_ms=150.0))
        assert labels.sum() == 0
        assert not valid[100:114].any()

    def test_negative_policy_rejected(self):
        with pytest.raises(ValueError):
            LabelPolicy(airbag_ms=-1.0)
