"""Butterworth design and filtering, validated against scipy.signal."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal as scipy_signal

from repro.signal.filters import (
    OnlineSosFilter,
    butter_lowpass_sos,
    lowpass_filter,
    sosfilt,
    sosfilt_zi,
    sosfiltfilt,
)


class TestDesign:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5, 6, 8])
    def test_frequency_response_matches_scipy(self, order):
        ours = butter_lowpass_sos(order, 5.0, 100.0)
        reference = scipy_signal.butter(order, 5.0, fs=100.0, output="sos")
        w, h_ours = scipy_signal.sosfreqz(ours, 512, fs=100.0)
        _, h_ref = scipy_signal.sosfreqz(reference, 512, fs=100.0)
        np.testing.assert_allclose(np.abs(h_ours), np.abs(h_ref), atol=1e-12)

    def test_dc_gain_is_exactly_one(self):
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        for row in sos:
            assert row[:3].sum() == pytest.approx(row[3:].sum(), abs=1e-14)

    def test_cutoff_is_minus_3db(self):
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        w, h = scipy_signal.sosfreqz(sos, worN=[5.0], fs=100.0)
        assert 20 * np.log10(abs(h[0])) == pytest.approx(-3.0103, abs=0.01)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            butter_lowpass_sos(0, 5.0, 100.0)
        with pytest.raises(ValueError):
            butter_lowpass_sos(4, 60.0, 100.0)  # above Nyquist
        with pytest.raises(ValueError):
            butter_lowpass_sos(4, 0.0, 100.0)


class TestSosfilt:
    def test_matches_scipy_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 3)) + 2.0
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        ours, _ = sosfilt(sos, x)
        theirs = scipy_signal.sosfilt(sos, x, axis=0)
        np.testing.assert_allclose(ours, theirs, atol=1e-12)

    def test_state_continuation_equals_one_shot(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 2))
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        full, _ = sosfilt(sos, x)
        first, state = sosfilt(sos, x[:120])
        second, _ = sosfilt(sos, x[120:], state)
        np.testing.assert_allclose(np.concatenate([first, second]), full,
                                   atol=1e-12)

    def test_zi_matches_scipy(self):
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        np.testing.assert_allclose(sosfilt_zi(sos),
                                   scipy_signal.sosfilt_zi(sos), atol=1e-12)

    def test_steady_state_passes_constant_unchanged(self):
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        x = np.full((100, 1), 3.7)
        zi = sosfilt_zi(sos)[:, :, None] * x[0]
        y, _ = sosfilt(sos, x, zi)
        np.testing.assert_allclose(y, x, atol=1e-10)

    def test_1d_input_round_trip(self):
        x = np.random.default_rng(2).normal(size=200)
        sos = butter_lowpass_sos(2, 5.0, 100.0)
        y, _ = sosfilt(sos, x)
        assert y.shape == x.shape

    def test_bad_state_shape_rejected(self):
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        with pytest.raises(ValueError, match="zi"):
            sosfilt(sos, np.zeros((10, 2)), np.zeros((1, 2, 2)))


class TestFiltfilt:
    @pytest.mark.parametrize("order", [2, 4])
    def test_matches_scipy(self, order):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(500, 2)) + 5.0
        sos = butter_lowpass_sos(order, 5.0, 100.0)
        ours = sosfiltfilt(sos, x)
        theirs = scipy_signal.sosfiltfilt(sos, x, axis=0)
        np.testing.assert_allclose(ours, theirs, atol=1e-9)

    def test_zero_phase_preserves_slow_sine_position(self):
        fs = 100.0
        t = np.arange(600) / fs
        x = np.sin(2 * np.pi * 1.0 * t)
        y = lowpass_filter(x, fs)
        # Peak position must not shift (zero phase); inspect one period so
        # equal-height peaks cannot alias the argmax.
        assert abs(int(np.argmax(y[100:200])) - int(np.argmax(x[100:200]))) <= 2

    def test_attenuates_high_frequency(self):
        fs = 100.0
        t = np.arange(1000) / fs
        slow = np.sin(2 * np.pi * 1.0 * t)
        fast = np.sin(2 * np.pi * 25.0 * t)
        y = lowpass_filter(slow + fast, fs)
        residual = y - slow
        # 25 Hz through a 4th-order 5 Hz low-pass: > 50 dB down.
        assert np.abs(residual[100:-100]).max() < 0.02

    def test_too_short_signal_rejected(self):
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        with pytest.raises(ValueError, match="too short"):
            sosfiltfilt(sos, np.zeros(5))

    @given(offset=st.floats(-10, 10))
    @settings(max_examples=20, deadline=None)
    def test_dc_offset_preserved(self, offset):
        x = np.full(200, offset)
        y = lowpass_filter(x, 100.0)
        np.testing.assert_allclose(y, x, atol=1e-8)


class TestOnlineFilter:
    def test_streaming_equals_batch_causal(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(250, 9)) + 1.0
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        online = OnlineSosFilter(sos, channels=9)
        streamed = np.vstack([online.process(x[i]) for i in range(len(x))])
        # Reference: causal filtering with first-sample steady-state init.
        zi = sosfilt_zi(sos)[:, :, None] * x[0]
        reference, _ = sosfilt(sos, x, zi)
        np.testing.assert_allclose(streamed, reference, atol=1e-10)

    def test_no_startup_transient_on_constant(self):
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        online = OnlineSosFilter(sos, channels=3)
        sample = np.array([0.0, 0.0, 1.0])
        for _ in range(10):
            y = online.process(sample)
        np.testing.assert_allclose(y[0], sample, atol=1e-10)

    def test_reset_forgets_state(self):
        sos = butter_lowpass_sos(4, 5.0, 100.0)
        online = OnlineSosFilter(sos, channels=1)
        online.process(np.array([5.0]))
        online.reset()
        y = online.process(np.array([1.0]))
        np.testing.assert_allclose(y[0], [1.0], atol=1e-10)

    def test_channel_mismatch_rejected(self):
        online = OnlineSosFilter(butter_lowpass_sos(2, 5.0, 100.0), channels=3)
        with pytest.raises(ValueError, match="channels"):
            online.process(np.zeros((4, 2)))


class TestWarmUp:
    """Steady-state priming: the filter must start (and restart after a
    stream reset) transient-free on DC-offset signals like gravity."""

    def _filter(self, channels=3):
        return OnlineSosFilter(butter_lowpass_sos(4, 5.0, 100.0),
                               channels=channels)

    def test_primed_tracks_state_lifecycle(self):
        online = self._filter()
        assert not online.primed
        online.process(np.ones(3))
        assert online.primed
        online.reset()
        assert not online.primed
        online.reprime(np.ones(3))
        assert online.primed

    def test_reset_then_constant_passes_transient_free(self):
        online = self._filter(channels=1)
        rng = np.random.default_rng(0)
        online.process(rng.normal(size=(100, 1)))   # a noisy first life
        online.reset()
        y = online.process(np.full((30, 1), 2.5))
        np.testing.assert_allclose(y, 2.5, atol=1e-10)

    def test_reprime_skips_the_post_gap_transient(self):
        online = self._filter(channels=1)
        online.process(np.full((50, 1), 5.0))       # settled at 5
        # After a long gap the stream resumes at a very different level;
        # without re-priming the old state would ring for many samples.
        online.reprime(np.array([1.0]))
        y = online.process(np.full((20, 1), 1.0))
        np.testing.assert_allclose(y, 1.0, atol=1e-10)

    def test_nonfinite_state_self_heals(self):
        online = self._filter(channels=1)
        online.process(np.array([np.nan]))          # poisons the IIR state
        assert not np.isfinite(online._state).all()
        y = online.process(np.full((10, 1), 1.5))
        np.testing.assert_allclose(y, 1.5, atol=1e-10)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_priming_is_transient_free_for_any_dc_level(self, seed):
        rng = np.random.default_rng(seed)
        level = rng.uniform(-20.0, 20.0, size=9)
        online = self._filter(channels=9)
        y = online.process(np.tile(level, (15, 1)))
        np.testing.assert_allclose(y, np.tile(level, (15, 1)), atol=1e-8)
