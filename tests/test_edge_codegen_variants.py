"""C code generation across architecture variants."""

from __future__ import annotations

import shutil
import subprocess

import numpy as np
import pytest

from repro.core.architecture import CnnHyperParams, build_lightweight_cnn
from repro.core.baselines import build_mlp
from repro.edge import generate_c_source
from repro.quant import QuantizedModel

pytestmark = pytest.mark.skipif(shutil.which("cc") is None,
                                reason="no C compiler")


def _quantize(model, window):
    model.compile("adam", "bce")
    rng = np.random.default_rng(0)
    x = rng.normal(size=(96, window, 9)).astype(np.float32)
    y = (x[:, :, 0].mean(axis=1) > 0).astype(float)[:, None]
    model.fit(x, y, epochs=2, batch_size=32, seed=0)
    return QuantizedModel.convert(model, x), x


def _compile_and_compare(qmodel, test_x, tmp_path, atol=1e-5):
    source = generate_c_source(qmodel, include_main=True, test_input=test_x)
    c_file = tmp_path / "variant.c"
    c_file.write_text(source)
    binary = tmp_path / "variant"
    subprocess.run(["cc", "-O2", "-std=c99", "-o", str(binary), str(c_file),
                    "-lm"], check=True, capture_output=True)
    out = subprocess.run([str(binary)], check=True, capture_output=True,
                         text=True).stdout.split()
    c_probs = np.array([float(v) for v in out])
    np.testing.assert_allclose(c_probs, qmodel.predict(test_x).reshape(-1),
                               atol=atol)


@pytest.mark.parametrize(
    "window,hyper",
    [
        (20, CnnHyperParams(conv_filters=8, kernel_size=3)),
        (30, CnnHyperParams(conv_filters=16, kernel_size=5, pool_size=3)),
    ],
    ids=["small-200ms", "pool3-300ms"],
)
def test_cnn_variants_compile_and_match(window, hyper, tmp_path):
    model = build_lightweight_cnn(window, hyper=hyper, seed=1)
    qmodel, x = _quantize(model, window)
    _compile_and_compare(qmodel, x[:8], tmp_path)


def test_mlp_codegen_compiles_and_matches(tmp_path):
    """The emitter also covers plain dense stacks (flatten + dense)."""
    model = build_mlp(20, hidden=(32, 16), seed=1)
    qmodel, x = _quantize(model, 20)
    _compile_and_compare(qmodel, x[:8], tmp_path)
