"""Task catalogue and subject model invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.subjects import make_subjects
from repro.datasets.tasks import (
    GREEN_ADL_IDS,
    KFALL_TASK_IDS,
    RED_ADL_IDS,
    SELF_COLLECTED_TASK_IDS,
    TASKS,
    adl_ids,
    fall_ids,
    get_task,
)


class TestCatalogue:
    def test_44_tasks_numbered_1_to_44(self):
        assert sorted(TASKS) == list(range(1, 45))

    def test_paper_class_counts(self):
        # Self-collected: 23 ADLs, 21 falls (Section II-B).
        assert len(adl_ids()) == 23
        assert len(fall_ids()) == 21

    def test_kfall_subset_counts(self):
        # KFall: 21 ADLs + 15 falls (Table I / Section I).
        kfall = [TASKS[t] for t in KFALL_TASK_IDS]
        assert sum(1 for t in kfall if t.kind == "ADL") == 21
        assert sum(1 for t in kfall if t.kind == "FALL") == 15

    def test_self_collected_is_superset_of_kfall(self):
        assert set(KFALL_TASK_IDS) < set(SELF_COLLECTED_TASK_IDS)
        extras = set(SELF_COLLECTED_TASK_IDS) - set(KFALL_TASK_IDS)
        assert extras == {37, 38, 39, 40, 41, 42, 43, 44}

    def test_red_green_partition_the_adls(self):
        assert RED_ADL_IDS | GREEN_ADL_IDS == set(adl_ids())
        assert not RED_ADL_IDS & GREEN_ADL_IDS
        # Red ADLs are vigorous: obstacle jumping and chair collapse are in.
        assert 44 in RED_ADL_IDS and 15 in RED_ADL_IDS
        # Plain standing/walking are green.
        assert 1 in GREEN_ADL_IDS and 6 in GREEN_ADL_IDS

    def test_falls_carry_fall_generator(self):
        for tid in fall_ids():
            assert TASKS[tid].generator == "fall"
            assert TASKS[tid].is_fall

    def test_height_falls_not_in_kfall(self):
        for tid in (39, 40, 41, 42):
            assert not TASKS[tid].in_kfall

    def test_get_task_error_message(self):
        with pytest.raises(KeyError, match="catalogue"):
            get_task(99)

    def test_descriptions_non_empty_and_unique(self):
        descriptions = [t.description for t in TASKS.values()]
        assert all(descriptions)
        assert len(set(descriptions)) == len(descriptions)


class TestSubjects:
    def test_deterministic_generation(self):
        a = make_subjects("SC", 5, seed=42)
        b = make_subjects("SC", 5, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = make_subjects("SC", 5, seed=1)
        b = make_subjects("SC", 5, seed=2)
        assert a != b

    def test_ids_unique_and_prefixed(self):
        subjects = make_subjects("KF", 32, seed=0)
        ids = [s.subject_id for s in subjects]
        assert len(set(ids)) == 32
        assert all(i.startswith("KF") for i in ids)

    def test_demographics_within_clips(self):
        for s in make_subjects("SC", 50, seed=3):
            assert 18.0 <= s.age <= 65.0
            assert 150.0 <= s.height_cm <= 205.0
            assert 45.0 <= s.mass_kg <= 120.0

    def test_style_multipliers_centered_near_one(self):
        subjects = make_subjects("SC", 200, seed=4)
        cadence = np.array([s.cadence for s in subjects])
        assert 0.9 < cadence.mean() < 1.1
        assert cadence.std() > 0.05  # real inter-subject variability

    def test_female_fraction_controllable(self):
        all_female = make_subjects("SC", 30, seed=5, female_fraction=1.0)
        assert all(s.sex == "F" for s in all_female)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            make_subjects("SC", 0, seed=0)
