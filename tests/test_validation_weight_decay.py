"""Dataset validation report and optimizer weight decay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    Recording,
    validate_dataset,
    validate_recording,
)
from repro.nn import optimizers


def _recording(n=200, accel_scale=1.0, fall=None, **kwargs):
    rng = np.random.default_rng(0)
    accel = np.tile([0, 0, 1.0], (n, 1)) * accel_scale
    accel += rng.normal(0, 0.01, size=accel.shape)
    defaults = dict(
        subject_id="V1", task_id=1, trial=0, fs=100.0,
        accel=accel, gyro=rng.normal(0, 5, (n, 3)),
        euler=rng.normal(0, 2, (n, 3)),
    )
    if fall:
        onset, impact = fall
        defaults.update(fall_onset=onset, impact=impact, task_id=30)
        mag = defaults["accel"]
        mag[impact : impact + 5] *= 4.0  # impact transient
        mag[onset:impact] *= 0.5         # unloading
    defaults.update(kwargs)
    return Recording(**defaults)


class TestValidation:
    def test_clean_recording_passes(self):
        assert validate_recording(_recording()) == []

    def test_wrong_units_detected(self):
        # m/s^2 data mislabelled as g: median magnitude ~9.8.
        issues = validate_recording(_recording(accel_scale=9.81))
        assert any(i.code == "gravity-scale" and i.severity == "error"
                   for i in issues)

    def test_nan_detected(self):
        rec = _recording()
        rec.accel[5, 1] = np.nan
        issues = validate_recording(rec)
        assert any(i.code == "nonfinite-accel" for i in issues)

    def test_healthy_fall_passes(self):
        rec = _recording(fall=(100, 160))
        issues = validate_recording(rec)
        assert not [i for i in issues if i.severity == "error"], issues

    def test_missing_impact_transient_warned(self):
        rec = _recording(fall=(100, 160))
        rec.accel[160:165] /= 4.0  # erase the transient
        issues = validate_recording(rec)
        assert any(i.code == "weak-impact" for i in issues)

    def test_degenerate_fall_errors(self):
        rec = _recording(fall=(100, 101))
        issues = validate_recording(rec)
        assert any(i.code == "degenerate-fall" for i in issues)

    def test_dataset_report_aggregates(self, tiny_selfcollected):
        subset = Dataset("sub", list(tiny_selfcollected)[:20])
        report = validate_dataset(subset)
        assert report.recordings_checked == 20
        assert report.ok, [i.message for i in report.errors]
        assert "20 recordings checked" in report.summary()

    def test_kfall_frame_skips_gravity_check(self, tiny_kfall):
        subset = Dataset("kf", list(tiny_kfall)[:5], frame=tiny_kfall.frame)
        report = validate_dataset(subset)
        # m/s^2 data would fail the g-units check; the frame disables it.
        assert not [i for i in report.errors if i.code == "gravity-scale"]


class TestWeightDecay:
    def test_decay_shrinks_matrix_weights(self):
        opt = optimizers.SGD(learning_rate=0.1, weight_decay=0.5)
        w = np.ones((2, 2))
        opt.apply({"w": w}, {"w": np.zeros((2, 2))})
        assert np.all(w < 1.0)

    def test_vectors_exempt(self):
        opt = optimizers.SGD(learning_rate=0.1, weight_decay=0.5)
        b = np.ones(3)
        opt.apply({"b": b}, {"b": np.zeros(3)})
        np.testing.assert_array_equal(b, np.ones(3))

    def test_decoupled_from_adam_moments(self):
        # Zero gradient: pure decay; Adam moments must stay zero so the
        # decay does not leak into the adaptive statistics.
        opt = optimizers.Adam(learning_rate=0.1, weight_decay=0.1)
        w = np.full((2, 2), 2.0)
        opt.apply({"w": w}, {"w": np.zeros((2, 2))})
        assert np.all(w < 2.0)
        assert np.all(opt._m[("w")] == 0) if ("w",) in opt._m else True

    def test_training_with_decay_reduces_norm(self):
        from repro import nn

        def run(decay):
            model = nn.Sequential((6,), [
                nn.layers.Dense(16, activation="relu", seed=0),
                nn.layers.Dense(1, activation="sigmoid", seed=1),
            ]).compile(nn.optimizers.Adam(learning_rate=0.01,
                                          weight_decay=decay), "bce")
            rng = np.random.default_rng(0)
            x = rng.normal(size=(64, 6)).astype(np.float32)
            y = rng.integers(0, 2, size=(64, 1)).astype(float)
            model.fit(x, y, epochs=10, batch_size=16, seed=0)
            return sum(float(np.sum(l.params["W"] ** 2))
                       for l in model.layers if "W" in l.params)

        assert run(0.05) < run(0.0)

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            optimizers.SGD(weight_decay=-0.1)
