"""`ServeConfig.backend`: int8 serving through the quantized kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.architecture import build_lightweight_cnn
from repro.core.detector import DetectorConfig, FallDetector
from repro.obs.metrics import MetricsRegistry
from repro.quant import QuantizedModel
from repro.serve import ServeConfig, ServeEngine
from repro.serve.bench import ServeBenchConfig, synth_stream


@pytest.fixture(scope="module")
def model():
    return build_lightweight_cnn(40, seed=3)


@pytest.fixture(scope="module")
def calibration():
    rng = np.random.default_rng(0)
    return rng.normal(size=(48, 40, 9)).astype(np.float32)


def _drive(engine, n_streams=4, duration_s=2.0):
    bench = ServeBenchConfig(n_streams=n_streams, duration_s=duration_s)
    detections = []
    streams = {f"s{i:03d}": synth_stream(i, bench) for i in range(n_streams)}
    for stream_id, (accel, gyro, t) in streams.items():
        for i in range(len(t)):
            engine.submit(stream_id, accel[i], gyro[i], t[i])
    detections.extend(engine.step())
    return detections


class TestBackendConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ServeConfig(backend="fp16")

    def test_default_is_float32(self, model):
        engine = ServeEngine(model, registry=MetricsRegistry())
        assert engine.backend == "float32"
        assert engine.report()["backend"] == "float32"
        assert engine.registry.gauge("serve/backend_int8").value == 0.0

    def test_int8_requires_calibration_or_converted_model(self, model):
        with pytest.raises(ValueError, match="calibration"):
            ServeEngine(model, ServeConfig(backend="int8"),
                        registry=MetricsRegistry())


class TestInt8Serving:
    def test_converts_once_and_labels_everything(self, model, calibration):
        engine = ServeEngine(model, ServeConfig(backend="int8"),
                             registry=MetricsRegistry(),
                             calibration=calibration)
        assert isinstance(engine.model, QuantizedModel)
        assert engine.backend == "int8"
        assert engine.registry.gauge("serve/backend_int8").value == 1.0
        _drive(engine)
        report = engine.report()
        assert report["backend"] == "int8"
        assert report["windows_inferred"] > 0
        for stream_report in engine.stream_report().values():
            assert stream_report["backend"] == "int8"

    def test_accepts_preconverted_quantized_model(self, model, calibration):
        quantized = QuantizedModel.convert(model, calibration)
        engine = ServeEngine(quantized, ServeConfig(backend="int8"),
                             registry=MetricsRegistry())
        assert engine.model is quantized

    def test_same_windows_as_float32(self, model, calibration):
        """Scheduling is backend-independent: both arms stage and infer
        exactly the same windows over the same telemetry."""
        float_engine = ServeEngine(model, ServeConfig(backend="float32"),
                                   registry=MetricsRegistry())
        int8_engine = ServeEngine(model, ServeConfig(backend="int8"),
                                  registry=MetricsRegistry(),
                                  calibration=calibration)
        _drive(float_engine)
        _drive(int8_engine)
        assert (float_engine.report()["windows_inferred"]
                == int8_engine.report()["windows_inferred"])

    def test_probe_rejects_batch_varying_model(self, model, calibration):
        """The init-time probe catches a backend whose batched forwards
        are not bitwise batch-invariant."""
        quantized = QuantizedModel.convert(model, calibration)

        class _BatchVarying(QuantizedModel):
            def __new__(cls):
                return object.__new__(cls)

            def __init__(self):
                self.__dict__.update(quantized.__dict__)

            def predict(self, x, batch_size=512):
                out = QuantizedModel.predict(self, x, batch_size=batch_size)
                return out + (0.001 if len(x) > 1 else 0.0)

        with pytest.raises(AssertionError, match="batch-invariant"):
            ServeEngine(_BatchVarying(), ServeConfig(backend="int8"),
                        registry=MetricsRegistry())


class TestDetectorBackend:
    def test_backend_property(self, model, calibration):
        cfg = DetectorConfig()
        assert FallDetector(model, cfg,
                            registry=MetricsRegistry()).backend == "float32"
        quantized = QuantizedModel.convert(model, calibration)
        detector = FallDetector(quantized, cfg, registry=MetricsRegistry())
        assert detector.backend == "int8"
        assert detector.health_report()["backend"] == "int8"
        assert FallDetector(None, cfg,
                            registry=MetricsRegistry()).backend == "none"
