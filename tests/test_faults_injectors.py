"""Fault injectors, windows, and scenario scheduling (repro.faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    ClockJitter,
    FaultScenario,
    FaultWindow,
    Gap,
    NonFinite,
    SampleDropout,
    Saturation,
    SensorDead,
    SpikeNoise,
    StuckChannel,
    builtin_scenarios,
)


def _stream(n=500, fs=100.0, seed=0):
    """A plausible clean stream: gravity + noise accel, noisy gyro."""
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=float) / fs
    accel = rng.normal(0.0, 0.05, size=(n, 3)) + np.array([0.0, 0.0, 1.0])
    gyro = rng.normal(0.0, 5.0, size=(n, 3))
    return t, accel, gyro


def _rng():
    return np.random.default_rng(42)


class TestInjectors:
    def test_dropout_removes_roughly_rate_and_keeps_order(self):
        t, a, g = _stream(2000)
        mask = np.ones(2000, dtype=bool)
        t2, a2, g2 = SampleDropout(rate=0.2).apply(t, a, g, mask, _rng())
        assert 0.7 < t2.size / t.size < 0.9
        assert (np.diff(t2) > 0).all()
        assert a2.shape[0] == g2.shape[0] == t2.shape[0]

    def test_dropout_respects_mask(self):
        t, a, g = _stream(400)
        mask = t < 1.0  # only the first second may lose samples
        t2, _, _ = SampleDropout(rate=0.5).apply(t, a, g, mask, _rng())
        assert np.isin(t[~mask], t2).all()

    def test_gap_deletes_exactly_the_window(self):
        t, a, g = _stream(300)
        mask = (t >= 1.0) & (t < 2.0)
        t2, a2, _ = Gap().apply(t, a, g, mask, _rng())
        assert t2.size == t.size - mask.sum()
        assert not ((t2 >= 1.0) & (t2 < 2.0)).any()

    def test_nonfinite_poisons_only_allowed_channels(self):
        t, a, g = _stream(1000)
        mask = np.ones(1000, dtype=bool)
        inj = NonFinite(rate=0.3, value="nan", channels=(0, 4))
        _, a2, g2 = inj.apply(t, a, g, mask, _rng())
        assert np.isnan(a2[:, 0]).any()
        assert np.isnan(g2[:, 1]).any()
        assert np.isfinite(a2[:, 1:]).all()
        assert np.isfinite(g2[:, [0, 2]]).all()

    def test_nonfinite_mixed_draws_all_three_poisons(self):
        t, a, g = _stream(3000)
        mask = np.ones(3000, dtype=bool)
        _, a2, g2 = NonFinite(rate=0.2, value="mixed").apply(
            t, a, g, mask, _rng()
        )
        raw = np.concatenate([a2, g2], axis=1)
        assert np.isnan(raw).any()
        assert (raw == np.inf).any()
        assert (raw == -np.inf).any()

    def test_saturation_clips_only_inside_mask(self):
        t, a, g = _stream(200)
        a = a * 10.0   # well beyond a 2 g rail
        mask = t < 1.0
        _, a2, g2 = Saturation(accel_range_g=2.0).apply(t, a, g, mask, _rng())
        assert (np.abs(a2[mask]) <= 2.0).all()
        np.testing.assert_array_equal(a2[~mask], a[~mask])
        assert (np.abs(g2[mask]) <= 300.0).all()

    def test_stuck_channel_freezes_one_channel(self):
        t, a, g = _stream(300)
        mask = t >= 1.0
        _, a2, g2 = StuckChannel(channel=4).apply(t, a, g, mask, _rng())
        frozen = g2[mask][:, 1]
        assert (frozen == frozen[0]).all()
        np.testing.assert_array_equal(a2, a)           # other channels intact
        np.testing.assert_array_equal(g2[:, [0, 2]], g[:, [0, 2]])

    def test_spikes_add_large_single_axis_hits(self):
        t, a, g = _stream(2000)
        mask = np.ones(2000, dtype=bool)
        _, a2, _ = SpikeNoise(rate=0.05, accel_amp_g=8.0).apply(
            t, a, g, mask, _rng()
        )
        delta = np.abs(a2 - a)
        hit_rows = (delta > 1.0).any(axis=1)
        assert 0 < hit_rows.sum() < 2000
        # One axis per hit: exactly one channel moved on each spiked row.
        assert ((delta[hit_rows] > 1.0).sum(axis=1) == 1).all()

    def test_clock_jitter_keeps_timestamps_monotone(self):
        t, a, g = _stream(500)
        mask = np.ones(500, dtype=bool)
        t2, a2, _ = ClockJitter(jitter_std_s=0.004, drift=0.05).apply(
            t, a, g, mask, _rng()
        )
        assert (np.diff(t2) >= 0).all()
        assert not np.allclose(t2, t)
        np.testing.assert_array_equal(a2, a)   # data untouched

    @pytest.mark.parametrize("mode", ["zero", "nan", "freeze"])
    def test_sensor_dead_modes(self, mode):
        t, a, g = _stream(300)
        mask = t >= 1.5
        _, a2, g2 = SensorDead(sensor="gyro", mode=mode).apply(
            t, a, g, mask, _rng()
        )
        np.testing.assert_array_equal(a2, a)
        dead = g2[mask]
        if mode == "zero":
            assert (dead == 0.0).all()
        elif mode == "nan":
            assert np.isnan(dead).all()
        else:
            assert (dead == dead[0]).all()

    def test_injectors_never_mutate_inputs(self):
        t, a, g = _stream(400)
        t0, a0, g0 = t.copy(), a.copy(), g.copy()
        mask = np.ones(400, dtype=bool)
        for inj in (SampleDropout(0.3), Gap(), NonFinite(rate=0.3),
                    Saturation(0.5, 1.0), StuckChannel(0), SpikeNoise(0.2),
                    ClockJitter(0.01), SensorDead("accel", "nan")):
            inj.apply(t, a, g, mask, _rng())
            np.testing.assert_array_equal(t, t0)
            np.testing.assert_array_equal(a, a0)
            np.testing.assert_array_equal(g, g0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SampleDropout(rate=1.5)
        with pytest.raises(ValueError):
            NonFinite(value="zero")
        with pytest.raises(ValueError):
            Saturation(accel_range_g=-1.0)
        with pytest.raises(ValueError):
            StuckChannel(channel=6)
        with pytest.raises(ValueError):
            SpikeNoise(rate=0.0)
        with pytest.raises(ValueError):
            ClockJitter(jitter_std_s=-0.001)
        with pytest.raises(ValueError):
            SensorDead(sensor="magnetometer")
        with pytest.raises(ValueError):
            SensorDead(mode="explode")


class TestFaultWindow:
    def test_absolute_bounds(self):
        t = np.arange(500) / 100.0
        w = FaultWindow(Gap(), start=1.0, end=2.0)
        mask = w.mask(t)
        assert mask.sum() == 100
        assert mask[100] and not mask[99] and not mask[200]

    def test_fractional_bounds_scale_with_duration(self):
        w = FaultWindow(Gap(), start=0.25, end=0.75, fraction=True)
        short = np.arange(100) / 100.0
        long = np.arange(1000) / 100.0
        assert w.mask(short).mean() == pytest.approx(0.5, abs=0.05)
        assert w.mask(long).mean() == pytest.approx(0.5, abs=0.05)

    def test_open_end_runs_to_stream_end(self):
        t = np.arange(200) / 100.0
        mask = FaultWindow(Gap(), start=1.0).mask(t)
        assert mask[-1] and mask.sum() == 100

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            FaultWindow(Gap(), start=-0.1)
        with pytest.raises(ValueError):
            FaultWindow(Gap(), start=2.0, end=1.0)
        with pytest.raises(ValueError):
            FaultWindow(Gap(), start=0.2, end=1.5, fraction=True)


class TestFaultScenario:
    def test_seeded_replay_is_bit_identical(self):
        t, a, g = _stream(800, seed=3)
        scenario = FaultScenario(
            "combo",
            [FaultWindow(SampleDropout(0.1)),
             FaultWindow(NonFinite(rate=0.05), start=0.3, end=0.7,
                         fraction=True),
             FaultWindow(SpikeNoise(0.05))],
            seed=11,
        )
        first = scenario.apply_arrays(t, a, g)
        second = scenario.apply_arrays(t, a, g)
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_different_seed_changes_draws(self):
        t, a, g = _stream(800, seed=3)
        windows = [FaultWindow(SampleDropout(0.1))]
        one = FaultScenario("s", windows, seed=1).apply_arrays(t, a, g)
        two = FaultScenario("s", windows, seed=2).apply_arrays(t, a, g)
        assert one[0].size != two[0].size or not np.array_equal(one[0], two[0])

    def test_length_mismatch_rejected(self):
        t, a, g = _stream(100)
        scenario = FaultScenario("s", [FaultWindow(Gap())])
        with pytest.raises(ValueError, match="lengths"):
            scenario.apply_arrays(t[:50], a, g)

    def test_non_window_entries_rejected(self):
        with pytest.raises(TypeError):
            FaultScenario("s", [Gap()])

    def test_apply_recording_drops_euler(self, tiny_selfcollected):
        rec = next(r for r in tiny_selfcollected if r.is_fall)
        scenario = builtin_scenarios(seed=1)["dropout"]
        t, a, g = scenario.apply(rec)
        assert a.shape[1] == 3 and g.shape[1] == 3
        assert t.shape[0] == a.shape[0] <= rec.n_samples

    def test_builtin_registry_covers_the_documented_suite(self):
        scenarios = builtin_scenarios(seed=5)
        assert set(scenarios) == {
            "dropout", "burst_gap", "nan_burst", "saturation",
            "stuck_axis", "spikes", "clock_jitter", "gyro_dead",
        }
        for name, scenario in scenarios.items():
            assert isinstance(scenario, FaultScenario)
            assert scenario.name == name
            assert scenario.windows
