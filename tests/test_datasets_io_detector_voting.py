"""Dataset snapshots (npz round trips) and detector vote debouncing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, FallDetector
from repro.datasets import Dataset, load_dataset, save_dataset


class TestDatasetIO:
    def test_round_trip_preserves_everything(self, tiny_selfcollected,
                                             tmp_path):
        subset = Dataset(
            tiny_selfcollected.name,
            list(tiny_selfcollected)[:6],
            frame=tiny_selfcollected.frame,
        )
        path = tmp_path / "snapshot.npz"
        save_dataset(subset, path)
        loaded = load_dataset(path)
        assert loaded.name == subset.name
        assert loaded.frame == subset.frame
        assert len(loaded) == len(subset)
        for original, restored in zip(subset, loaded):
            assert restored.subject_id == original.subject_id
            assert restored.task_id == original.task_id
            assert restored.trial == original.trial
            assert restored.fall_onset == original.fall_onset
            assert restored.impact == original.impact
            assert restored.accel_unit == original.accel_unit
            np.testing.assert_allclose(restored.accel, original.accel,
                                       atol=1e-6)
            np.testing.assert_allclose(restored.gyro, original.gyro,
                                       atol=1e-4)

    def test_round_trip_keeps_fall_annotations_usable(self, tiny_selfcollected,
                                                      tmp_path):
        falls = Dataset("falls", [r for r in tiny_selfcollected
                                  if r.is_fall][:3])
        path = tmp_path / "falls.npz"
        save_dataset(falls, path)
        for rec in load_dataset(path):
            assert rec.is_fall
            assert 0 <= rec.fall_onset < rec.impact

    def test_kfall_frame_survives(self, tiny_kfall, tmp_path):
        subset = Dataset("kf", list(tiny_kfall)[:2], frame=tiny_kfall.frame)
        path = tmp_path / "kf.npz"
        save_dataset(subset, path)
        loaded = load_dataset(path)
        assert loaded.frame == "kfall"
        assert loaded[0].accel_unit == "m/s^2"

    def test_bad_format_error_names_found_version(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        meta = np.frombuffer(json.dumps({"format": 99}).encode(),
                             dtype=np.uint8)
        np.savez(path, meta=meta)
        with pytest.raises(ValueError, match="format 99"):
            load_dataset(path)

    def test_missing_meta_entry_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="no 'meta' entry"):
            load_dataset(path)

    def test_missing_meta_key_names_the_key(self, tmp_path):
        import json

        path = tmp_path / "partial.npz"
        meta = np.frombuffer(
            json.dumps({"format": 1, "frame": "selfcollected",
                        "recordings": []}).encode(),
            dtype=np.uint8,
        )
        np.savez(path, meta=meta)
        with pytest.raises(ValueError, match="'name'"):
            load_dataset(path)


class _SequenceModel:
    """Scripted per-inference probabilities."""

    def __init__(self, script):
        self.script = list(script)
        self.i = 0

    def predict(self, x):
        value = self.script[min(self.i, len(self.script) - 1)]
        self.i += 1
        return np.array([[value]])


class TestDetectorVoting:
    def _run(self, script, consecutive):
        cfg = DetectorConfig(window_ms=200, overlap=0.5,
                             consecutive_required=consecutive)
        detector = FallDetector(_SequenceModel(script), cfg)
        hits = []
        n = cfg.window_samples + cfg.hop_samples * (len(script) - 1)
        for _ in range(n):
            hit = detector.push(np.array([0, 0, 1.0]), np.zeros(3))
            if hit:
                hits.append(hit)
        return hits

    def test_single_vote_fires_immediately(self):
        hits = self._run([0.1, 0.9, 0.1], consecutive=1)
        assert len(hits) == 1

    def test_two_votes_suppress_isolated_spike(self):
        hits = self._run([0.1, 0.9, 0.1, 0.2], consecutive=2)
        assert hits == []

    def test_two_votes_fire_on_sustained_detection(self):
        hits = self._run([0.1, 0.9, 0.9, 0.9], consecutive=2)
        assert len(hits) >= 1
        # Fires one hop later than the single-vote detector would have.
        cfg = DetectorConfig(window_ms=200, overlap=0.5)
        assert hits[0].sample_index >= cfg.window_samples + cfg.hop_samples - 1

    def test_streak_resets_on_miss(self):
        hits = self._run([0.9, 0.1, 0.9, 0.1, 0.9, 0.1], consecutive=2)
        assert hits == []

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DetectorConfig(consecutive_required=0)
