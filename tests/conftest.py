"""Shared fixtures: tiny datasets and a trained model, built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PreprocessConfig,
    build_lightweight_cnn,
    build_segments,
    subject_folds,
    train_model,
)
from repro.core.trainer import TrainingConfig
from repro.datasets import build_kfall, build_selfcollected


@pytest.fixture(scope="session")
def tiny_selfcollected():
    """2 subjects, all 44 tasks, compressed durations."""
    return build_selfcollected(n_subjects=2, duration_scale=0.3, seed=11)


@pytest.fixture(scope="session")
def tiny_kfall():
    """2 subjects, KFall tasks, in the rotated KFall frame / m/s² units."""
    return build_kfall(n_subjects=2, duration_scale=0.3, seed=13)


@pytest.fixture(scope="session")
def tiny_segments(tiny_selfcollected):
    """Segments of the tiny self-collected dataset (400 ms / 50 %)."""
    return build_segments(tiny_selfcollected, PreprocessConfig())


@pytest.fixture(scope="session")
def trained_cnn(tiny_segments):
    """A briefly-trained CNN + its train/test split (session-cached)."""
    folds = subject_folds(tiny_segments.subjects, k=2, n_val_subjects=0, seed=0)
    fold = folds[0]
    train = tiny_segments.by_subjects(fold.train_subjects)
    test = tiny_segments.by_subjects(fold.test_subjects)
    # No validation subjects at this scale: validate on the test fold's
    # data is forbidden, so use a slice of train for early stopping.
    rng = np.random.default_rng(0)
    idx = rng.permutation(len(train))
    cut = max(len(train) // 5, 1)
    val = train.select(idx[:cut])
    tr = train.select(idx[cut:])
    # Subject-overlap between tr and val is fine for a *test fixture*; the
    # trainer enforces disjointness, so fake distinct subject labels.
    val.subject = np.array([f"{s}#val" for s in val.subject], dtype=object)
    model, history = train_model(
        build_lightweight_cnn,
        tr,
        val,
        TrainingConfig(epochs=6, patience=3, batch_size=64, seed=0),
    )
    return {"model": model, "train": tr, "val": val, "test": test,
            "history": history}
