"""Sharded fleet front: routing, backpressure, supervision, failover."""

import time
import zlib

import numpy as np
import pytest

from repro.core.detector import DetectorConfig
from repro.experiments import MagnitudeProbeModel
from repro.fleet import FleetConfig, FleetFront
from repro.obs.metrics import MetricsRegistry
from repro.serve.engine import ServeConfig, ServeEngine

DET = DetectorConfig()
HOP = DET.hop_samples


def _serve_config():
    return ServeConfig(detector=DET, per_stream_metrics=False)


def _streams(n_streams=4, n_samples=400, pulse_t=2.5, seed=0):
    """Tiny deterministic population with one high-g pulse per stream."""
    rng = np.random.default_rng(seed)
    streams = {}
    for i in range(n_streams):
        accel = rng.normal(0, 0.02, (n_samples, 3)) + [0.0, 0.0, 1.0]
        t = np.arange(n_samples) / DET.fs
        accel[:, 2] += 3.0 * np.exp(-0.5 * ((t - pulse_t) / 0.1) ** 2)
        gyro = rng.normal(0, 1.0, (n_samples, 3))
        streams[f"s{i:03d}"] = (accel, gyro, t)
    return streams


def _feed(front_or_engine, streams, pump, *, kill_at=None, on_kill=None):
    n = len(next(iter(streams.values()))[2])
    out = {sid: [] for sid in streams}
    for i in range(n):
        for sid, (accel, gyro, t) in streams.items():
            front_or_engine.submit(sid, accel[i], gyro[i], t[i])
        if kill_at is not None and (i + 1) / DET.fs >= kill_at:
            on_kill()
            kill_at = None
        if (i + 1) % HOP == 0:
            for sid, det in pump():
                out[sid].append(det)
    return out


@pytest.fixture
def front():
    registry = MetricsRegistry()
    front = FleetFront(
        MagnitudeProbeModel(),
        FleetConfig(n_shards=2, serve=_serve_config(),
                    worker_timeout_s=5.0, restart_initial_s=0.02),
        registry=registry,
    )
    yield front
    front.close()


class TestRouting:
    def test_crc32_assignment_is_deterministic(self, front):
        for sid in ("a", "b", "walker-7", "s042"):
            expected = zlib.crc32(sid.encode()) % 2
            assert front.shard_for(sid) == expected
            assert front.shard_for(sid) == expected  # stable on re-ask

    def test_streams_spread_over_shards(self, front):
        homes = {front.shard_for(f"s{i:03d}") for i in range(32)}
        assert homes == {0, 1}


class TestBackpressure:
    def test_overflow_sheds_oldest_and_never_raises(self):
        registry = MetricsRegistry()
        front = FleetFront(
            MagnitudeProbeModel(),
            FleetConfig(n_shards=1, serve=_serve_config(),
                        queue_capacity=10),
            registry=registry,
        )
        try:
            for i in range(25):
                accepted = front.submit("only", (0, 0, 1), (0, 0, 0),
                                        t=i / DET.fs)
                assert accepted == (i < 10)
            shard = front._shards[0]
            assert len(shard.pending) == 10
            # Oldest-first: the surviving samples are the 15 freshest.
            surviving_t = [s[3] for s in shard.pending]
            assert surviving_t == [i / DET.fs for i in range(15, 25)]
            assert front.shed_samples == 15
            front.pump()
            assert registry.counter("fleet/shed_samples").value == 15
        finally:
            front.close()

    def test_no_surviving_shard_drops_instead_of_raising(self):
        # max_restarts=1 with crashes recurring before any healthy round
        # (a healthy round resets the backoff by design), so the shard
        # fails permanently and later submits drop instead of raising.
        registry = MetricsRegistry()
        front = FleetFront(
            MagnitudeProbeModel(),
            FleetConfig(n_shards=1, serve=_serve_config(),
                        worker_timeout_s=0.5, restart_initial_s=0.01,
                        max_restarts=1),
            registry=registry,
        )
        try:
            front.kill_worker(0)
            front._shards[0].process.join(timeout=5.0)
            assert front.heartbeat() == [0]     # crash detected
            deadline = time.monotonic() + 20.0
            while front.worker_restarts == 0 and time.monotonic() < deadline:
                front._restart_due(time.monotonic())
                time.sleep(0.005)
            assert front.worker_restarts == 1   # the only allowed restart
            front.kill_worker(0)
            front._shards[0].process.join(timeout=5.0)
            assert front.heartbeat() == [0]     # second crash: exhausted
            assert front._shards[0].failed
            assert front.worker_failures == 1
            assert front.submit("x", (0, 0, 1), (0, 0, 0), t=0.1) is False
            assert front.dropped_samples >= 1
        finally:
            front.close()


class TestBitIdentity:
    def test_fleet_matches_single_engine(self):
        streams = _streams(n_streams=5, n_samples=400)
        single_engine = ServeEngine(MagnitudeProbeModel(), _serve_config(),
                                    registry=MetricsRegistry())
        single = _feed(single_engine, streams,
                       lambda: single_engine.step())
        for sid, det in single_engine.step():
            single[sid].append(det)

        front = FleetFront(
            MagnitudeProbeModel(),
            FleetConfig(n_shards=3, serve=_serve_config()),
            registry=MetricsRegistry(),
        )
        try:
            fleet = _feed(front, streams, front.pump)
            for sid, det in front.drain():
                fleet[sid].append(det)
        finally:
            front.close()
        assert all(len(v) > 0 for v in single.values())
        assert fleet == single  # frozen float dataclasses: bitwise equality


class TestFailover:
    def test_worker_kill_loses_no_streams_and_resumes(self):
        streams = _streams(n_streams=6, n_samples=500, pulse_t=3.5)
        registry = MetricsRegistry()
        front = FleetFront(
            MagnitudeProbeModel(),
            # worker_timeout_s is deliberately huge: on a loaded 1-core
            # box a legitimate round can take seconds, and a spurious
            # hang-timeout would kill shard 1 before the explicit SIGKILL
            # does, breaking the crashes==1 accounting. Crash detection
            # goes through the dead-process short-circuit, not the
            # timeout, so the large value costs nothing here.
            FleetConfig(n_shards=2, serve=_serve_config(),
                        worker_timeout_s=120.0, restart_initial_s=0.02),
            registry=registry,
        )
        try:
            out = _feed(front, streams, front.pump, kill_at=2.0,
                        on_kill=lambda: front.kill_worker(1))
            for sid, det in front.drain():
                out[sid].append(det)
            report = front.close()
        finally:
            front.close()
        assert report["worker_crashes"] == 1
        assert report["worker_restarts"] >= 1
        assert report["rehomed_streams"] >= 1
        assert report["worker_failures"] == 0
        # Zero streams lost: every session reports after the kill.
        assert set(front.stream_report()) == set(streams)
        # Detections resumed: every stream caught the post-kill pulse.
        for sid, dets in out.items():
            assert any(d.time_s >= 3.0 for d in dets), sid
        assert registry.counter("fleet/worker_restarts").value >= 1

    def test_rehomed_detector_reports_interruption_then_recovers(self):
        # The unit-level core of degraded-then-healthy: a rebuilt session
        # seeded with note_interruption starts degraded and recovers
        # after the configured clean streak, like any mid-stream fault.
        from repro.core.detector import FallDetector

        rng = np.random.default_rng(3)
        detector = FallDetector(MagnitudeProbeModel(), DET,
                                registry=MetricsRegistry())
        detector.note_interruption(last_t=1.0)
        assert detector.health == "degraded"
        for i in range(DET.recovery_samples + 2):
            # Plausible idle telemetry: gravity plus noise (exact zeros
            # on the gyro would trip the gyro-dead standing fault).
            detector.push_collect(
                np.array([0.0, 0.0, 1.0]) + rng.normal(0, 0.01, 3),
                rng.normal(0, 1.0, 3), t=1.5 + i / DET.fs)
        assert detector.health == "healthy"

    def test_hang_detection_times_out_and_restarts(self):
        registry = MetricsRegistry()
        front = FleetFront(
            MagnitudeProbeModel(),
            FleetConfig(n_shards=1, serve=_serve_config(),
                        worker_timeout_s=0.3, restart_initial_s=0.02),
            registry=registry,
        )
        try:
            front.submit("h0", (0, 0, 1), (0, 0, 0), t=0.0)
            assert front.hang_worker(0, seconds=30.0)
            front.pump()                       # round times out
            assert front.worker_timeouts == 1
            assert front.redelivered_samples == 1
            deadline = time.monotonic() + 20.0
            while front.worker_restarts == 0 and time.monotonic() < deadline:
                front.pump()
                time.sleep(0.005)
            assert front.worker_restarts == 1
            assert front.live_shards == [0]
        finally:
            front.close()

    def test_heartbeat_detects_dead_worker(self, front):
        assert front.heartbeat() == []
        front._shards[1].process.kill()
        front._shards[1].process.join(timeout=5.0)
        assert front.heartbeat() == [1]
        assert front.worker_crashes == 1


class TestShipBack:
    def test_close_merges_worker_metrics_and_latency(self):
        streams = _streams(n_streams=4, n_samples=300)
        registry = MetricsRegistry()
        front = FleetFront(
            MagnitudeProbeModel(),
            FleetConfig(n_shards=2, serve=_serve_config()),
            registry=registry,
        )
        try:
            _feed(front, streams, front.pump)
            front.drain()
        finally:
            report = front.close()
        names = {e["name"] for e in registry.entries()}
        # Worker-side engine metrics arrived via merge_entries ...
        assert "serve/windows_inferred" in names
        assert "fleet/window_latency_ms" in names
        # ... and the merged latency equals the sum of shard reports.
        windows = sum(r["windows_inferred"]
                      for r in front.shard_reports().values())
        assert front.fleet_latency().summary()["count"] == windows
        assert windows > 0
        assert report["rounds"] > 0
        assert len(front.shard_reports()) == 2
