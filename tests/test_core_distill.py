"""Knowledge distillation (PreFallKD-style)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_lightweight_cnn
from repro.core.distill import distill_model, soft_targets
from repro.core.trainer import TrainingConfig


class TestSoftTargets:
    def test_alpha_one_is_hard_labels(self):
        y = np.array([0, 1, 1])
        teacher = np.array([0.9, 0.1, 0.5])
        np.testing.assert_array_equal(soft_targets(y, teacher, alpha=1.0), y)

    def test_alpha_zero_is_teacher(self):
        y = np.array([0, 1])
        teacher = np.array([0.3, 0.7])
        np.testing.assert_array_equal(soft_targets(y, teacher, alpha=0.0),
                                      teacher)

    def test_blend_midpoint(self):
        out = soft_targets(np.array([1.0]), np.array([0.5]), alpha=0.5)
        assert out[0] == pytest.approx(0.75)

    def test_targets_stay_in_unit_interval(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=100)
        teacher = rng.random(100)
        out = soft_targets(y, teacher, alpha=0.3)
        assert np.all((out >= 0.0) & (out <= 1.0))

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            soft_targets(np.array([1]), np.array([0.5]), alpha=1.5)
        with pytest.raises(ValueError, match="disagree"):
            soft_targets(np.array([1, 0]), np.array([0.5]))


class _ConstantTeacher:
    def __init__(self, value):
        self.value = value

    def predict(self, x):
        return np.full((len(x), 1), self.value)


class TestDistillModel:
    def test_student_trains_under_teacher(self, tiny_segments, trained_cnn):
        train = trained_cnn["train"]
        val = trained_cnn["val"]
        teacher = trained_cnn["model"]
        student, history = distill_model(
            teacher, build_lightweight_cnn, train, val,
            TrainingConfig(epochs=3, patience=2, seed=1), alpha=0.6,
        )
        assert len(history.epochs) >= 1
        test = trained_cnn["test"]
        probs = student.predict(test.X).reshape(-1)
        positives = probs[test.y == 1]
        negatives = probs[test.y == 0]
        # The distilled student separates the classes.
        assert positives.mean() > negatives.mean()

    def test_alpha_zero_follows_a_constant_teacher(self, trained_cnn):
        """With alpha=0 and a teacher that always says 0.5, the student's
        optimum is to predict ~0.5 everywhere."""
        train = trained_cnn["train"]
        val = trained_cnn["val"]
        student, _ = distill_model(
            _ConstantTeacher(0.5), build_lightweight_cnn, train, val,
            TrainingConfig(epochs=4, patience=10, augment=False,
                           use_class_weights=False, use_output_bias=False,
                           seed=0),
            alpha=0.0,
        )
        probs = student.predict(train.X).reshape(-1)
        assert abs(float(probs.mean()) - 0.5) < 0.15

    def test_subject_leak_rejected(self, tiny_segments):
        half = tiny_segments.by_subjects(tiny_segments.subjects[:1])
        with pytest.raises(ValueError, match="subject-independent"):
            distill_model(_ConstantTeacher(0.5), build_lightweight_cnn,
                          half, half, TrainingConfig(epochs=1))
