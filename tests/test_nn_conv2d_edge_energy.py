"""Conv2D/MaxPool2D layers and the edge energy model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.architecture import build_lightweight_cnn
from repro.edge import CortexM7Config, estimate_energy
from repro.quant import QuantizedModel
from tests.test_nn_gradients import TOL, analytic_vs_numeric


class TestConv2DGradients:
    @pytest.mark.parametrize("padding", ["valid", "same"])
    def test_conv2d_gradcheck(self, padding):
        def build(i):
            h = nn.layers.Conv2D(3, (2, 3), padding=padding,
                                 activation="tanh", seed=1)(i)
            h = nn.layers.Flatten()(h)
            return nn.layers.Dense(2, seed=2)(h)

        assert analytic_vs_numeric(build, (5, 6, 2)) < TOL

    def test_conv2d_maxpool2d_stack_gradcheck(self):
        def build(i):
            h = nn.layers.Conv2D(4, 3, padding="same", activation="relu",
                                 seed=1)(i)
            h = nn.layers.MaxPool2D(2)(h)
            h = nn.layers.Flatten()(h)
            return nn.layers.Dense(2, seed=2)(h)

        assert analytic_vs_numeric(build, (6, 6, 2)) < TOL


class TestConv2DSemantics:
    def test_output_shapes(self):
        valid = nn.layers.Conv2D(8, (3, 3), seed=0)(nn.Input((10, 12, 2)))
        assert valid.shape == (8, 10, 8)
        same = nn.layers.Conv2D(8, (3, 3), padding="same", seed=0)(
            nn.Input((10, 12, 2))
        )
        assert same.shape == (10, 12, 8)

    def test_identity_kernel(self):
        layer = nn.layers.Conv2D(1, (1, 1), use_bias=False, seed=0)
        layer(nn.Input((4, 4, 1)))
        layer.params["W"] = np.ones((1, 1, 1, 1), dtype=np.float32)
        x = np.random.default_rng(0).normal(size=(2, 4, 4, 1)).astype(np.float32)
        np.testing.assert_allclose(layer.forward([x]), x, rtol=1e-6)

    def test_maxpool2d_values(self):
        layer = nn.layers.MaxPool2D(2)
        layer(nn.Input((4, 4, 1)))
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = layer.forward([x])
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.layers.Conv2D(0, 3)
        with pytest.raises(ValueError):
            nn.layers.Conv2D(2, 3, padding="reflect")
        with pytest.raises(ValueError, match="rows, cols"):
            nn.layers.Conv2D(2, 3, seed=0)(nn.Input((5, 5)))
        with pytest.raises(ValueError, match="smaller than pool"):
            nn.layers.MaxPool2D(8)(nn.Input((4, 4, 1)))


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def qmodel(self):
        model = build_lightweight_cnn(40, seed=0)
        model.compile("adam", "bce")
        x = np.random.default_rng(0).normal(size=(64, 40, 9)).astype(np.float32)
        return QuantizedModel.convert(model, x)

    def test_energy_is_battery_friendly(self, qmodel):
        report = estimate_energy(qmodel)
        # A wearable budget: well under a millijoule per inference and a
        # low duty cycle at 100 Hz / 200 ms hop.
        assert 0.1 < report["inference_energy_uj"] < 20_000
        assert 0.0 < report["duty_cycle"] < 0.5
        assert report["mean_current_ma"] < report["active_current_ma"]

    def test_faster_hop_increases_mean_power(self, qmodel):
        lazy = estimate_energy(qmodel, hop_samples=40)
        eager = estimate_energy(qmodel, hop_samples=5)
        assert eager["mean_power_mw"] > lazy["mean_power_mw"]

    def test_energy_scales_with_clock_independent_duty(self, qmodel):
        # Halving the clock halves active power but doubles active time:
        # per-inference energy stays ~constant, duty cycle doubles.
        fast = estimate_energy(qmodel, config=CortexM7Config(clock_hz=216e6))
        slow = estimate_energy(qmodel, config=CortexM7Config(clock_hz=108e6))
        assert slow["duty_cycle"] == pytest.approx(2 * fast["duty_cycle"],
                                                   rel=0.05)
        assert slow["inference_energy_uj"] == pytest.approx(
            fast["inference_energy_uj"], rel=0.05
        )
