"""Setup shim.

Kept so ``pip install -e .`` works on environments whose pip/setuptools
combination lacks the ``wheel`` package needed for PEP 660 editable
installs; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
