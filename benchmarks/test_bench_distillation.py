"""PreFallKD-style knowledge distillation (Table I row [7]).

Trains the heavy CNN-BiGRU teacher, distils it into the lightweight CNN
student, and compares three deployable options: the plain student, the
distilled student, and the (undeployable) teacher.  PreFallKD's premise is
that the student recovers part of the teacher's quality at a fraction of
the cost; the deployment columns show what that fraction is.
"""

from __future__ import annotations

import pytest

from repro.core import build_lightweight_cnn
from repro.core.baselines import build_cnn_bigru
from repro.core.crossval import subject_folds
from repro.core.distill import distill_model
from repro.core.trainer import train_model
from repro.eval.metrics import segment_metrics
from repro.eval.reports import format_table
from repro.experiments.runners import (
    _segments_for,
    build_experiment_dataset,
    training_config,
)


@pytest.fixture(scope="module")
def distillation(scale):
    dataset = build_experiment_dataset(scale)
    segments = _segments_for(dataset, 400.0, 0.5)
    fold = subject_folds(segments.subjects, k=scale.folds,
                         n_val_subjects=scale.n_val_subjects,
                         seed=scale.seed)[0]
    train = segments.by_subjects(fold.train_subjects)
    val = segments.by_subjects(fold.val_subjects)
    test = segments.by_subjects(fold.test_subjects)
    config = training_config(scale)

    teacher, _ = train_model(build_cnn_bigru, train, val, config)
    student_plain, _ = train_model(build_lightweight_cnn, train, val, config)
    student_kd, _ = distill_model(teacher, build_lightweight_cnn, train, val,
                                  config, alpha=0.5)

    from repro.nn import estimate_macs

    def _score(model):
        probs = model.predict(test.X).reshape(-1)
        metrics = segment_metrics(test.y, probs)
        return {
            "f1": 100 * metrics["f1"],
            "precision": 100 * metrics["precision"],
            "recall": 100 * metrics["recall"],
            "params": model.count_params(),
            "macs": estimate_macs(model),
        }

    return {
        "teacher (CNN-BiGRU)": _score(teacher),
        "student plain": _score(student_plain),
        "student distilled": _score(student_kd),
    }


def test_bench_distillation(benchmark, save_report, distillation):
    benchmark.pedantic(
        lambda: {k: v["f1"] for k, v in distillation.items()},
        rounds=1, iterations=1,
    )
    rows = [
        [name, f"{res['f1']:6.2f}", f"{res['precision']:6.2f}",
         f"{res['recall']:6.2f}", res["params"], res["macs"]]
        for name, res in distillation.items()
    ]
    save_report(
        "distillation",
        format_table(["Model", "F1 %", "Prec %", "Rec %", "Params", "MACs"],
                     rows, title="PreFallKD-style distillation (held-out "
                                 "subjects, 400 ms)"),
    )


def test_all_three_models_learn(distillation):
    for name, res in distillation.items():
        assert res["f1"] > 60.0, (name, res)


def test_student_is_much_cheaper_than_teacher(distillation):
    """Deployability is about *compute*, not parameter count: the CNN's
    parameters sit in one cheap dense layer, while the BiGRU recurses over
    every time step in both directions.  Compare analytic MACs."""

    def macs(entry):
        return entry["macs"]

    assert macs(distillation["student distilled"]) < 0.5 * macs(
        distillation["teacher (CNN-BiGRU)"]
    )


def test_distillation_does_not_break_the_student(distillation):
    assert (distillation["student distilled"]["f1"]
            >= distillation["student plain"]["f1"] - 5.0)
