"""Ablations of the paper's design choices.

The paper motivates four decisions we can isolate:

* 150 ms pre-impact truncation (operational necessity, costs accuracy);
* fall-segment augmentation (time/window warping);
* class weights + output-bias initialisation (imbalance handling);
* the three-branch split vs one trunk convolution over all 9 channels.

Each variant runs the same CV protocol; the report lists segment F1 and
the event-level rates.
"""

from __future__ import annotations

import pytest

from repro.eval.reports import format_table
from repro.experiments import run_ablations


@pytest.fixture(scope="module")
def ablations(scale):
    return run_ablations(scale)


def test_bench_ablations(benchmark, scale, save_report, ablations):
    benchmark.pedantic(
        lambda: {k: v["metrics"]["f1"] for k, v in ablations.items()},
        rounds=1, iterations=1,
    )
    rows = [
        [name,
         f"{res['metrics']['f1']:6.2f}",
         f"{res['metrics']['precision']:6.2f}",
         f"{res['metrics']['recall']:6.2f}",
         f"{res['fall_miss_rate']:6.2f}",
         f"{res['adl_false_positive_rate']:6.2f}"]
        for name, res in ablations.items()
    ]
    save_report(
        "ablations",
        format_table(
            ["Variant", "F1 %", "Prec %", "Rec %", "Fall miss %", "ADL FP %"],
            rows, title="Design-choice ablations (proposed CNN, 400 ms)",
        ),
    )


def test_no_truncation_is_an_easier_task(ablations):
    """Training *with* the last 150 ms sees the most discriminative data;
    the paper argues related work's higher F1 comes exactly from this."""
    assert (ablations["no_truncation"]["metrics"]["f1"]
            >= ablations["full"]["metrics"]["f1"] - 2.0)


def test_all_variants_learn(ablations):
    for name, res in ablations.items():
        assert res["metrics"]["f1"] > 55.0, (name, res["metrics"])


def test_full_method_is_competitive(ablations):
    """The full recipe must be at or near the top among the *deployable*
    variants (no_truncation is not deployable — its extra data cannot be
    used in reality)."""
    deployable = {k: v for k, v in ablations.items() if k != "no_truncation"}
    best = max(v["metrics"]["f1"] for v in deployable.values())
    assert ablations["full"]["metrics"]["f1"] >= best - 4.0
