"""Table I context: classical threshold-based pre-impact detectors.

The paper's related-work table lists threshold algorithms (de Sousa 2021
[10], Jung 2020 [11]) with accuracies in the 92-96 % range.  We run our
implementations of both styles on the same synthetic corpus the learned
models use, at the event level, to reproduce the qualitative claim:
threshold methods are fast and decent but trail the learned detector.
"""

from __future__ import annotations

import pytest

from repro.core import build_lightweight_cnn
from repro.eval.reports import format_table
from repro.experiments import run_model_on_window, run_table1_thresholds

#: The detectors' real-world analogues: (reference, accuracy %, f1 %).
#: The first two appear in Table I; PIPTO [12] is cited in the text
#: without comparable pre-impact numbers.
PAPER_THRESHOLD_ROWS = {
    "VerticalVelocityDetector": ("de Sousa 2021 [10]", 95.86, 97.67),
    "ImpactEnergyDetector": ("Jung 2020 [11]", 92.40, 94.20),
    "AccelerationWindowDetector": ("Moutsis 2023 [12]", None, None),
}


@pytest.fixture(scope="module")
def threshold_results(scale):
    return run_table1_thresholds(scale)


def test_bench_table1_thresholds(benchmark, scale, save_report,
                                 threshold_results):
    benchmark.pedantic(lambda: run_table1_thresholds(scale), rounds=1,
                       iterations=1)
    rows = []
    for name, res in threshold_results.items():
        ref, paper_acc, paper_f1 = PAPER_THRESHOLD_ROWS[name]
        fmt = lambda v: f"{v:.2f}" if v is not None else "n/a"
        rows.append([
            name, ref,
            f"{100 * res['accuracy']:.2f} / {fmt(paper_acc)}",
            f"{100 * res['f1']:.2f} / {fmt(paper_f1)}",
            f"tp={res['tp']} fp={res['fp']} tn={res['tn']} fn={res['fn']}",
        ])
    save_report(
        "table1_thresholds",
        format_table(
            ["Detector", "Paper analogue", "Acc (meas/paper)",
             "F1 (meas/paper)", "Confusion"],
            rows, title="Table I context: threshold baselines",
        ),
    )


def test_thresholds_detect_most_falls(threshold_results):
    for name, res in threshold_results.items():
        assert res["recall"] > 0.55, (name, res)


def test_thresholds_are_far_better_than_chance(threshold_results):
    for name, res in threshold_results.items():
        assert res["f1"] > 0.5, (name, res)


def test_sensor_richness_ordering(threshold_results):
    """More sensing -> better thresholds: the accel+gyro+angle detector
    must beat the accelerometer-only one."""
    assert (threshold_results["ImpactEnergyDetector"]["f1"]
            >= threshold_results["AccelerationWindowDetector"]["f1"])


@pytest.mark.slow
def test_learned_model_beats_thresholds_event_level(scale, threshold_results):
    """The paper's core motivation: learned models beat thresholds."""
    run = run_model_on_window(build_lightweight_cnn, scale, window_ms=400.0)
    report = run["events"]
    cnn_recall = 1.0 - report.fall_miss_rate / 100.0
    best_threshold_recall = max(r["recall"] for r in threshold_results.values())
    # The CNN must reach at least comparable event recall (the paper's
    # claim is higher accuracy at matched reactivity).
    assert cnn_recall >= best_threshold_recall - 0.15
