"""Section IV-A: does merging the aligned KFall corpus help?

The paper merges its self-collected data with (aligned) KFall explicitly
to "increase the number of subjects and the volume of data ... improved
generalization capabilities".  This bench holds out self-collected
subjects and trains the proposed CNN twice — own data only vs own + KFall
— quantifying the benefit of the alignment + merge machinery.
"""

from __future__ import annotations

import pytest

from repro.eval.reports import format_table
from repro.experiments import run_cross_dataset


@pytest.fixture(scope="module")
def cross(scale):
    return run_cross_dataset(scale)


def test_bench_cross_dataset(benchmark, scale, save_report, cross):
    benchmark.pedantic(
        lambda: {k: v for k, v in cross.items() if k != "test_subjects"},
        rounds=1, iterations=1,
    )
    rows = []
    for condition in ("own_only", "merged"):
        res = cross[condition]
        rows.append([
            condition, res["train_subjects"], res["train_segments"],
            f"{res['f1']:6.2f}", f"{res['fall_miss_rate']:6.2f}",
            f"{res['adl_false_positive_rate']:6.2f}",
        ])
    save_report(
        "cross_dataset",
        format_table(
            ["Training corpus", "Subjects", "Segments", "F1 %",
             "Fall miss %", "ADL FP %"],
            rows,
            title="Merging aligned KFall data (test: held-out "
                  "self-collected subjects)",
        ),
    )


def test_merging_does_not_hurt(cross):
    """More (aligned) subjects must not degrade generalization much; the
    paper's premise is that it helps."""
    assert cross["merged"]["f1"] >= cross["own_only"]["f1"] - 3.0


def test_merged_training_set_is_larger(cross):
    assert cross["merged"]["train_segments"] > cross["own_only"]["train_segments"]
    assert cross["merged"]["train_subjects"] > cross["own_only"]["train_subjects"]
