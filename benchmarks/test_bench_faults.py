"""Fault-injection robustness: clean-vs-faulted event-level degradation.

Trains a short CNN, then streams the held-out subject's recordings
through the hardened detector once clean and once per built-in fault
scenario.  The evaluation detector runs with a flight recorder armed, so
the faulted trials archive incident files under ``benchmarks/results/``
— and the bench closes the loop by replaying one of them and requiring a
bit-identical reproduction.  Archives the comparison table the `repro
faults` CLI prints.
"""

from __future__ import annotations

import pathlib

from repro.eval.reports import render_faults_report
from repro.experiments import run_fault_scenarios
from repro.obs import render_replay_report, replay_incident


def test_bench_fault_scenarios(scale, save_report):
    incident_dir = pathlib.Path(__file__).parent / "results" / "incidents"
    results = run_fault_scenarios(scale, incident_dir=str(incident_dir))
    report = render_faults_report(results)

    clean = results["clean"]
    assert clean["events"] == results["recordings"] > 0
    for name, stats in results["scenarios"].items():
        # The hardened detector survived the scenario (stream_recording
        # raising would have failed the test) and produced a verdict for
        # every recording.
        assert stats["events"] == clean["events"], name
        assert 0.0 <= stats["sensitivity"] <= 100.0, name
    # A burst outage long enough to trip max_gap_ms must reset streams.
    assert results["scenarios"]["burst_gap"]["stream_resets"] > 0
    # Killing the gyroscope must drive the detector into fault.
    assert "fault" in results["scenarios"]["gyro_dead"]["states_seen"]

    # The fault run must have frozen incidents, and every capture must
    # replay bit-identically (zero probability/decision diffs).
    paths = results["incident_paths"]
    assert paths, "fault run with incident_dir armed froze no incidents"
    replay = replay_incident(paths[-1], model="recorded")
    assert replay["identical"], replay
    report += (f"\n\nflight recorder: {len(paths)} incident(s) archived in "
               f"{incident_dir}\n" + render_replay_report(replay))
    save_report("faults_robustness", report)
