"""Fault-injection robustness: clean-vs-faulted event-level degradation.

Trains a short CNN, then streams the held-out subject's recordings
through the hardened detector once clean and once per built-in fault
scenario.  Archives the comparison table the `repro faults` CLI prints.
"""

from __future__ import annotations

from repro.eval.reports import render_faults_report
from repro.experiments import run_fault_scenarios


def test_bench_fault_scenarios(scale, save_report):
    results = run_fault_scenarios(scale)
    report = render_faults_report(results)
    save_report("faults_robustness", report)

    clean = results["clean"]
    assert clean["events"] == results["recordings"] > 0
    for name, stats in results["scenarios"].items():
        # The hardened detector survived the scenario (stream_recording
        # raising would have failed the test) and produced a verdict for
        # every recording.
        assert stats["events"] == clean["events"], name
        assert 0.0 <= stats["sensitivity"] <= 100.0, name
    # A burst outage long enough to trip max_gap_ms must reset streams.
    assert results["scenarios"]["burst_gap"]["stream_resets"] > 0
    # Killing the gyroscope must drive the detector into fault.
    assert "fault" in results["scenarios"]["gyro_dead"]["states_seen"]
