"""Section III-A design sweep: window size (100-400 ms) x overlap (0-75 %).

The paper reports experimenting over this grid and settling on 400 ms /
50 % overlap.  This bench regenerates the sweep for the proposed CNN and
checks that the paper's chosen region is competitive.

The grid is trimmed at benchmark scale (two overlaps) to keep runtime in
minutes; set REPRO_SCALE=paper for the full 4x4 grid.
"""

from __future__ import annotations

import pytest

from repro.eval.reports import format_table
from repro.experiments import run_window_sweep

WINDOWS = (100.0, 200.0, 300.0, 400.0)


def _overlaps(scale):
    return (0.0, 0.25, 0.5, 0.75) if scale.name == "paper" else (0.0, 0.5)


@pytest.fixture(scope="module")
def sweep(scale):
    return run_window_sweep(scale, windows=WINDOWS,
                            overlaps=_overlaps(scale))


def test_bench_window_sweep(benchmark, scale, save_report, sweep):
    def _one_cell():
        return run_window_sweep(scale, windows=(400.0,), overlaps=(0.5,))

    benchmark.pedantic(_one_cell, rounds=1, iterations=1)
    rows = [
        [f"{window} ms", f"{overlap:.0%}",
         f"{metrics['accuracy']:6.2f}", f"{metrics['precision']:6.2f}",
         f"{metrics['recall']:6.2f}", f"{metrics['f1']:6.2f}"]
        for (window, overlap), metrics in sorted(sweep.items())
    ]
    save_report(
        "window_sweep",
        format_table(["Window", "Overlap", "Acc %", "Prec %", "Rec %", "F1 %"],
                     rows, title="Section III-A sweep (proposed CNN)"),
    )


def test_papers_chosen_config_is_competitive(sweep):
    """400 ms / 50 % must be within a few F1 points of the grid optimum."""
    best = max(m["f1"] for m in sweep.values())
    chosen = sweep[(400, 0.5)]["f1"]
    assert chosen >= best - 5.0, (chosen, best)


def test_long_windows_beat_the_shortest(sweep):
    """Paper: F1 rises with window size (100 ms windows see too little)."""
    by_window = {}
    for (window, _), metrics in sweep.items():
        by_window.setdefault(window, []).append(metrics["f1"])
    mean = {w: sum(v) / len(v) for w, v in by_window.items()}
    assert mean[400] >= mean[100] - 1.0, mean


def test_all_cells_learned_something(sweep):
    for cell, metrics in sweep.items():
        assert metrics["f1"] > 55.0, (cell, metrics)
