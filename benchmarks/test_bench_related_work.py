"""Related-work architecture comparison (Table I modern baselines).

Table I lists heavier learned models — CNN-BiGRU (Kiran 2024 [5]) at the
top.  This bench trains our CNN-BiGRU implementation under the *paper's*
protocol (with the 150 ms truncation those works do not apply) and puts it
next to the proposed lightweight CNN, including the deployment view: the
bidirectional recurrence cannot run on the streaming MCU path anyway
(non-causal), which is the paper's deployability argument in code.
"""

from __future__ import annotations

import pytest

from repro.core.architecture import build_lightweight_cnn
from repro.core.baselines import RELATED_WORK_BUILDERS
from repro.eval.reports import format_table
from repro.experiments import run_model_on_window


@pytest.fixture(scope="module")
def comparison(scale):
    results = {}
    for name, builder in RELATED_WORK_BUILDERS.items():
        results[name] = run_model_on_window(builder, scale, window_ms=400.0)
    results["CNN (Proposed)"] = run_model_on_window(
        build_lightweight_cnn, scale, window_ms=400.0
    )
    return results


def test_bench_related_work(benchmark, scale, save_report, comparison):
    def _score_summary():
        return {name: run["metrics"]["f1"] for name, run in comparison.items()}

    benchmark.pedantic(_score_summary, rounds=1, iterations=1)
    rows = []
    for name, run in comparison.items():
        metrics = run["metrics"]
        events = run["events"]
        rows.append([
            name,
            f"{metrics['accuracy']:6.2f}", f"{metrics['f1']:6.2f}",
            f"{events.fall_miss_rate:6.2f}",
            f"{events.adl_false_positive_rate:6.2f}",
        ])
    save_report(
        "related_work",
        format_table(
            ["Model", "Acc %", "F1 %", "Fall miss %", "ADL FP %"],
            rows,
            title="Related-work comparison under the paper's protocol "
                  "(400 ms, truncated)",
        ),
    )


def test_proposed_cnn_competitive_with_heavier_models(comparison):
    cnn = comparison["CNN (Proposed)"]["metrics"]["f1"]
    for name, run in comparison.items():
        if name == "CNN (Proposed)":
            continue
        # The heavier recurrent model may edge ahead on segments, but the
        # lightweight CNN must stay within a few points — the paper's
        # efficiency argument only makes sense if accuracy is comparable.
        assert cnn >= run["metrics"]["f1"] - 5.0, (name, cnn, run["metrics"])


def test_related_work_models_learn(comparison):
    for name, run in comparison.items():
        assert run["metrics"]["f1"] > 60.0, (name, run["metrics"])
