"""Section IV-C: quantization parity and STM32F722 deployment readout.

Paper: post-training int8 quantization leaves performance unchanged; the
model occupies 67.03 KiB of flash and 16.87 KiB of RAM on the STM32F722
and infers one segment in 4 ms +/- 3 ms (plus 3 ms sensor fusion).

Shape claims checked: int8 == float32 decisions (>97 % agreement, F1 drop
< 2 points); the model fits the 256 KiB flash/RAM budget with real-time
margin; flash lands in the same tens-of-KiB decade as the paper.
"""

from __future__ import annotations

import shutil
import subprocess

import numpy as np
import pytest

from repro.edge import generate_c_source
from repro.eval.reports import render_edge_report
from repro.experiments import run_edge_experiment


@pytest.fixture(scope="module")
def edge(scale):
    return run_edge_experiment(scale)


def test_bench_edge_quantized_inference(benchmark, edge, save_report):
    qmodel = edge["qmodel"]
    x = np.zeros((1, *qmodel.input_shape), dtype=np.float32)
    benchmark(lambda: qmodel.predict(x))
    report = dict(edge["report"])
    save_report("edge_deployment", render_edge_report(report))


def test_quantization_keeps_performance(edge):
    assert edge["decision_agreement"] > 0.97
    assert abs(edge["f1_drop_points"]) < 2.0


def test_fits_the_board(edge):
    report = edge["report"]
    assert report["fits_flash"]
    assert report["fits_ram"]
    assert report["meets_deadline"]


def test_flash_same_decade_as_paper(edge):
    # Paper: 67.03 KiB.  Same architecture, same int8 storage: tens of KiB.
    assert 20.0 < edge["report"]["flash_kib"] < 150.0


def test_latency_within_papers_error_band(edge):
    # Paper: 4 ms +/- 3 ms on the physical board.
    assert edge["report"]["latency_ms"] < 7.0


@pytest.mark.skipif(shutil.which("cc") is None, reason="no C compiler")
def test_bench_generated_c_inference(benchmark, edge, tmp_path):
    """Compile the generated C and time native int8 inference."""
    qmodel = edge["qmodel"]
    rng = np.random.default_rng(0)
    test_x = rng.normal(size=(32, *qmodel.input_shape)).astype(np.float32)
    source = generate_c_source(qmodel, include_main=True, test_input=test_x)
    c_file = tmp_path / "model.c"
    c_file.write_text(source)
    binary = tmp_path / "model"
    subprocess.run(["cc", "-O2", "-std=c99", "-o", str(binary), str(c_file),
                    "-lm"], check=True, capture_output=True)

    def _run_native():
        return subprocess.run([str(binary)], check=True,
                              capture_output=True, text=True).stdout

    out = benchmark(_run_native)
    c_probs = np.array([float(v) for v in out.split()])
    py_probs = qmodel.predict(test_x).reshape(-1)
    np.testing.assert_allclose(c_probs, py_probs, atol=1e-5)
