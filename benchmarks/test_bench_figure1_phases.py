"""Figure 1: anatomy of a fall (pre-fall / falling / last 150 ms / impact /
post-fall).

Regenerates the data behind the paper's stage diagram from a synthetic
fall: per-stage durations and signal statistics, including the violet-
cross impact instant and the yellow "last 150 ms" band the method refuses
to rely on.
"""

from __future__ import annotations

import pytest

from repro.eval.reports import format_table
from repro.experiments import run_figure1


@pytest.fixture(scope="module")
def anatomy():
    return run_figure1(task_id=30, seed=42)


def test_bench_figure1(benchmark, save_report, anatomy):
    benchmark.pedantic(lambda: run_figure1(task_id=30, seed=42), rounds=1,
                       iterations=1)
    rows = []
    for stage, stats in anatomy["stages"].items():
        rows.append([
            stage,
            f"{stats.get('duration_ms', 0.0):8.0f}",
            f"{stats.get('accel_mag_mean', float('nan')):8.3f}",
            f"{stats.get('accel_mag_min', float('nan')):8.3f}",
            f"{stats.get('accel_mag_max', float('nan')):8.3f}",
            f"{stats.get('gyro_mag_max', float('nan')):9.1f}",
        ])
    save_report(
        "figure1_phases",
        format_table(
            ["Stage", "dur (ms)", "|a| mean", "|a| min", "|a| max",
             "|w| max"],
            rows,
            title=(f"Figure 1: fall anatomy — {anatomy['task']} "
                   f"(falling {anatomy['falling_duration_ms']:.0f} ms)"),
        ),
    )


def test_stage_ordering_and_durations(anatomy):
    stages = anatomy["stages"]
    assert stages["falling_withheld_150ms"]["duration_ms"] == pytest.approx(
        150.0, abs=10.0
    )
    # Paper: falling lasts 150-1100 ms.
    assert 150.0 <= anatomy["falling_duration_ms"] <= 1100.0


def test_signal_statistics_tell_the_figures_story(anatomy):
    stages = anatomy["stages"]
    # Quiet-ish activity before the fall.
    assert 0.7 < stages["pre_fall"]["accel_mag_mean"] < 1.3
    # The withheld 150 ms contains the deepest unloading (that is *why*
    # truncating it hurts).
    assert (stages["falling_withheld_150ms"]["accel_mag_min"]
            <= stages["falling_usable"]["accel_mag_min"] + 0.05)
    # Impact spike dominates everything else.
    assert stages["impact"]["accel_mag_max"] > 2.5
    # Post-fall stillness around 1 g.
    assert 0.7 < stages["post_fall"]["accel_mag_mean"] < 1.3
