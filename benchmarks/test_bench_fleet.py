"""Fleet scaling + failover benchmark (archived to fleet_scaling.txt).

Drives a 64-stream population over a 4-shard :class:`FleetFront` and
asserts the two ISSUE-level guarantees end to end:

* fault-free, the fleet's per-stream detections are byte-identical to a
  single-engine run of the same population (sharding, pipes and
  micro-batching change nothing);
* with a worker SIGKILLed mid-run, zero streams are lost — every session
  is re-homed and reporting, detections resume at the guaranteed
  post-kill pulse, alerts still page, and shed/redelivery stay bounded.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

from repro.experiments import MagnitudeProbeModel
from repro.fleet import FleetBenchConfig, render_fleet_report, run_fleet_benchmark

_REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_bench_fleet_scaling_and_failover(save_report, tmp_path):
    config = FleetBenchConfig(
        n_streams=64, n_shards=4, seed=19,
        store_dir=str(tmp_path / "fleet_events"),
    )
    result = run_fleet_benchmark(MagnitudeProbeModel(), config)

    # --- bit-identity: N shards reproduce one engine byte for byte ----
    assert result["n_streams"] == 64 and result["n_shards"] == 4
    assert result["mismatched_streams"] == []
    total = sum(len(v) for v in result["single"]["detections"].values())
    assert total > 0

    # --- failover: zero streams lost across a mid-run worker kill -----
    kill = result["kill"]
    assert kill["killed"]
    report = kill["report"]
    assert report["worker_crashes"] == 1
    assert report["worker_restarts"] >= 1
    assert report["worker_failures"] == 0
    assert result["killed_streams"]          # the kill actually hit homes
    assert report["rehomed_streams"] >= len(result["killed_streams"])
    assert result["lost_streams"] == []      # every session re-homed
    # Detections resume on every clean re-homed stream at the pulse.
    assert result["resumed_streams"] == result["clean_killed_streams"]
    # Alerts still page through the AlertManager after the failover.
    assert report["alerts"]["raised"] > 0
    # Backpressure stayed bounded: the restart outage backlogs without
    # shedding at this capacity, and redelivery covers the lost round.
    assert report["shed_samples"] == 0
    assert report["redelivered_samples"] > 0
    assert report["max_queue_depth"] <= config.queue_capacity
    # Recovery is visible on fleet/* metrics in the merged exposition.
    exposition = kill["exposition"]
    assert "repro_fleet_worker_restarts 1" in exposition
    assert "repro_fleet_worker_crashes 1" in exposition
    assert "repro_fleet_window_latency_ms_bucket" in exposition
    assert "repro_fleet_round_ms_bucket" in exposition

    # The merged exposition must parse under the metric-name lint.
    prom_path = (pathlib.Path(__file__).parent / "results"
                 / "fleet_exposition.prom")
    prom_path.parent.mkdir(exist_ok=True)
    prom_path.write_text(exposition, encoding="utf-8")
    lint = subprocess.run(
        [sys.executable,
         str(_REPO_ROOT / "scripts" / "check_metric_names.py"),
         "--exposition", str(prom_path)],
        capture_output=True, text=True,
    )
    assert lint.returncode == 0, lint.stdout + lint.stderr

    save_report("fleet_scaling", render_fleet_report(result))
