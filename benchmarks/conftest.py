"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables/figures at the ``REPRO_SCALE``
experiment scale (default: ``bench``).  Each bench renders a
paper-vs-measured table, prints it, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import get_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The experiment scale every benchmark runs at."""
    return get_scale()


@pytest.fixture(scope="session")
def save_report():
    """Callable persisting a rendered report and echoing it to stdout.

    Each archived file ends with the wall-clock durations the experiment
    runners recorded, so every table carries its own reproduction cost.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        from repro.experiments import (
            experiment_durations,
            experiment_pool_stats,
        )
        from repro.obs import get_registry

        durations = experiment_durations()
        if durations:
            text += "\n\nexperiment wall-clock: " + "  ".join(
                f"{k}={v:.1f}s" for k, v in sorted(durations.items())
            )
        # Durations above are meaningless without the pool/cache context
        # they ran under: a 4-worker, cache-warm number must never be
        # mistaken for a serial cold one.
        pool = experiment_pool_stats()
        if pool:
            text += "\npool: " + "  ".join(
                f"{k}(n_jobs={v['n_jobs']} wall={v['wall_s']:.1f}s "
                f"busy={v['busy_s']:.1f}s retried={v['retried_serial']})"
                for k, v in sorted(pool.items())
            )
        cache_counts = {
            entry["name"]: entry["value"]
            for entry in get_registry().entries()
            if entry["name"].startswith("cache/")
        }
        if cache_counts:
            text += "\ncache: " + "  ".join(
                f"{name.split('/', 1)[1]}={value}"
                for name, value in sorted(cache_counts.items())
            )
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _save
