"""Table III: MLP / LSTM / ConvLSTM2D / proposed CNN across window sizes.

Regenerates the paper's model-comparison table (accuracy, precision,
recall, F1 — macro-averaged percentages) on the merged synthetic corpus
with the full protocol: subject-independent CV, 150 ms truncation,
augmentation, class weights and output-bias initialisation.

Shape claims checked: the proposed CNN wins on F1 at every window size,
and its F1 does not degrade when the window grows from 200 ms to 400 ms.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import MODEL_BUILDERS
from repro.eval.reports import render_table3
from repro.experiments import run_table3

WINDOWS = (200.0, 300.0, 400.0)


@pytest.fixture(scope="module")
def table3_results(scale):
    return run_table3(scale, windows=WINDOWS)


def test_bench_table3(benchmark, scale, save_report, table3_results):
    """Time one CNN column; the full grid is produced once per session."""

    def _rerun_cnn_400():
        return run_table3(
            scale, windows=(400.0,),
            models={"CNN (Proposed)": MODEL_BUILDERS["CNN (Proposed)"]},
        )

    benchmark.pedantic(_rerun_cnn_400, rounds=1, iterations=1)
    save_report("table3_models", render_table3(table3_results,
                                               title="Table III (measured / paper)"))


def test_cnn_wins_at_every_window(table3_results):
    for window in table3_results:
        scores = {m: v["f1"] for m, v in table3_results[window].items()}
        best = max(scores, key=scores.get)
        # Allow a statistical tie: the CNN must be within 1.5 F1 points of
        # the best model at small benchmark scale, and strictly best at
        # 400 ms (the paper's headline configuration).
        assert scores["CNN (Proposed)"] >= scores[best] - 1.5, scores
    scores_400 = {m: v["f1"] for m, v in table3_results[400].items()}
    assert max(scores_400, key=scores_400.get) == "CNN (Proposed)", scores_400


def test_f1_does_not_collapse_with_window_size(table3_results):
    cnn = [table3_results[int(w)]["CNN (Proposed)"]["f1"] for w in WINDOWS]
    # Paper: 81.75 -> 82.85 -> 86.69 (monotone growth).  At bench scale the
    # synthetic task saturates and the trend flattens into noise, so we
    # only require that longer windows stay within a couple of points —
    # EXPERIMENTS.md discusses this honestly.
    assert cnn[-1] >= cnn[0] - 2.5, cnn


def test_accuracy_is_dominated_by_majority_class(table3_results):
    # Like the paper, raw accuracy is high for every model (>= 95 %) —
    # the interesting signal is in the macro scores.
    for window, models in table3_results.items():
        for name, metrics in models.items():
            assert metrics["accuracy"] > 90.0, (window, name, metrics)
