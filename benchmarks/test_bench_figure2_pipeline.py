"""Figure 2: the end-to-end methodology pipeline.

Traces every box of the paper's schematic — acquisition, alignment/merge,
preprocessing, training, testing, quantization, deployment — and reports
one summary line per stage.
"""

from __future__ import annotations

import pytest

from repro.eval.reports import format_table
from repro.experiments import run_figure2_pipeline


@pytest.fixture(scope="module")
def pipeline(scale):
    return run_figure2_pipeline(scale)


def test_bench_figure2_pipeline(benchmark, scale, save_report, pipeline):
    benchmark.pedantic(lambda: run_figure2_pipeline(scale), rounds=1,
                       iterations=1)
    rows = []
    for stage, summary in pipeline.items():
        rendered = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in summary.items()
        )
        rows.append([stage, rendered])
    save_report("figure2_pipeline",
                format_table(["Stage", "Summary"], rows,
                             title="Figure 2: pipeline trace"))


def test_every_stage_present(pipeline):
    assert set(pipeline) == {
        "acquisition", "preprocessing", "training", "testing", "deployment",
    }


def test_stage_outputs_are_consistent(pipeline):
    acq = pipeline["acquisition"]
    assert acq["falls"] > 0 and acq["adls"] > 0
    pre = pipeline["preprocessing"]
    assert pre["falling"] > 0
    assert pre["falling"] < pre["non_falling"]  # class imbalance survives
    train = pipeline["training"]
    assert train["epochs"] >= 1
    test = pipeline["testing"]
    assert test["f1"] > 0.5  # far above macro-chance
    deploy = pipeline["deployment"]
    assert deploy["fits"]
