"""Table IV: event-level misclassification of the proposed CNN (400 ms).

Regenerates both halves of the paper's Table IV: per-fall-task miss rates
(IVa), per-ADL-task false-positive rates (IVb), the overall averages
(paper: 4.17 % falls missed, 2.04 % ADL false positives) and the
red-vs-green ADL split (3.34 % vs 0.46 %).

Shape claims checked: falls from height are the hardest fall category;
"red" (vigorous, fall-like) ADLs draw more false activations than "green"
everyday ADLs; quiet ADLs never trigger.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.tasks import GREEN_ADL_IDS
from repro.eval.reports import render_table4
from repro.experiments import run_table4


@pytest.fixture(scope="module")
def table4(scale):
    return run_table4(scale)


def test_bench_table4(benchmark, scale, save_report, table4):
    def _evaluate_again():
        report = table4["report"]
        return (report.per_task_miss(), report.per_task_false_positive())

    benchmark.pedantic(_evaluate_again, rounds=1, iterations=1)
    save_report("table4_events",
                render_table4(table4["report"],
                              title="Table IV (measured / paper)"))


def test_miss_and_fp_rates_are_bounded(table4):
    # The absolute numbers depend on training-corpus size; at benchmark
    # scale we check they stay in a sane regime (paper: 4.17 % / 2.04 %).
    assert table4["fall_miss_rate"] < 40.0
    assert table4["adl_false_positive_rate"] < 40.0


def test_height_falls_are_hardest(table4):
    """Paper Table IVa: tasks 39/40 (falls from height) top the miss list."""
    miss = table4["per_task_miss"]
    height_miss = np.mean([miss.get(39, 0.0), miss.get(40, 0.0)])
    ordinary = [v for k, v in miss.items() if k not in (39, 40, 41, 42)]
    assert height_miss >= np.mean(ordinary) - 1e-9


def test_red_adls_worse_than_green(table4):
    rg = table4["red_green"]
    assert rg["red"] >= rg["green"]


def test_quiet_adls_do_not_trigger(table4):
    """Standing (1), sitting (11) and lying (17) must show 0 % FP."""
    fp = table4["per_task_fp"]
    for task in (1, 11, 17):
        assert fp.get(task, 0.0) == 0.0, fp


def test_green_adls_mostly_silent(table4):
    fp = table4["per_task_fp"]
    green_rates = [fp.get(t, 0.0) for t in sorted(GREEN_ADL_IDS)]
    # At least half of the everyday ADL tasks never fire (paper: 11 of 12
    # green tasks at 0.00 %).
    zero_fraction = np.mean([r == 0.0 for r in green_rates])
    assert zero_fraction >= 0.5, dict(zip(sorted(GREEN_ADL_IDS), green_rates))
