"""Serve-path scaling benchmark: micro-batched engine vs sequential.

Replays 32 synthetic streams through the sequential per-stream baseline
and through :class:`repro.serve.ServeEngine`, asserting the engine's
micro-batched inference is at least 2x faster on the inference path and
that batching changes no stream's detections (each stream's output must
match a solo-engine reference run exactly).
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

from repro.core.architecture import build_lightweight_cnn
from repro.serve import ServeBenchConfig, render_serve_report, run_serve_benchmark

_REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_bench_serve_scaling(save_report):
    config = ServeBenchConfig(n_streams=32, duration_s=8.0, seed=7)
    model = build_lightweight_cnn(config.detector.window_samples)
    report = run_serve_benchmark(model, config)

    assert report["n_streams"] >= 32
    # Batching must never change results: every stream byte-identical
    # to the same stream served alone.
    assert report["mismatched_streams"] == []
    # The engine exists to amortise per-window forwards; require the
    # headline >= 2x win on the inference path.
    assert report["inference_speedup"] >= 2.0
    # The vectorized block-ingest path closed most of the Amdahl gap
    # between the inference win and end-to-end wall-clock: gate the
    # whole-pipeline speedup too so the fast path cannot silently rot.
    assert report["wall_speedup"] >= 1.6
    assert report["windows_inferred"] > 0
    assert report["batches"] < report["windows_inferred"]

    # The 32-stream scrape: per-stream health folded into one labelled
    # family, plus the fleet-aggregated (merged-histogram) latency, and
    # the whole text must parse under the metric-name lint.
    exposition = report["exposition"]
    assert 'repro_serve_stream_health{stream="s000"}' in exposition
    assert 'repro_serve_stream_health{stream="s031"}' in exposition
    assert "repro_serve_fleet_window_latency_ms_bucket" in exposition
    assert 'le="+Inf"' in exposition
    prom_path = pathlib.Path(__file__).parent / "results" / "serve_exposition.prom"
    prom_path.parent.mkdir(exist_ok=True)
    prom_path.write_text(exposition, encoding="utf-8")
    lint = subprocess.run(
        [sys.executable, str(_REPO_ROOT / "scripts" / "check_metric_names.py"),
         "--exposition", str(prom_path)],
        capture_output=True, text=True,
    )
    assert lint.returncode == 0, lint.stdout + lint.stderr

    save_report("serve_scaling", render_serve_report(report))
