"""Quantized-serving benchmark: int8 must be the production fast path.

Trains the paper's CNN, converts it to int8 (plus a pruned + fine-tuned
variant), replays the same 32-stream fleet through each backend, and
gates the claims that make int8 worth shipping: the integer kernels must
beat float32 on the inference stage, pruning must beat plain int8, the
deployed-arithmetic contract must hold bit-for-bit, and event-level
sensitivity must match the float arm.
"""

from __future__ import annotations

from repro.quant.bench import (
    QuantBenchConfig,
    render_quant_report,
    run_quant_benchmark,
)


def test_bench_quant_scaling(save_report):
    config = QuantBenchConfig(n_streams=32, duration_s=8.0, seed=7)
    report = run_quant_benchmark(config)
    arms = report["arms"]

    # Scheduling is backend-independent: every arm inferred the same
    # windows, so the timing comparison is apples to apples.
    windows = {a["windows_inferred"] for a in arms.values()}
    assert len(windows) == 1 and windows.pop() > 0

    # The headline gate: batched integer kernels make serving inference
    # at least 1.5x faster than float32, and pruning buys more on top.
    assert report["int8_speedup"] >= 1.5
    assert report["pruned_speedup_vs_int8"] > 1.0

    # Deployed-arithmetic contract: the fast path is bit-identical to
    # the reference lowering and bitwise batch-invariant, for both the
    # full and the pruned model.
    for checks in report["contracts"].values():
        assert checks["bit_identical"]
        assert checks["batch_invariant"]

    # "The model's performance remains unchanged after quantization":
    # event-level sensitivity of each integer arm within tolerance of
    # the float arm on the clean fleet replay.
    float_sens = arms["float32"]["sensitivity"]["sensitivity"]
    tolerance = config.sensitivity_tolerance_pp
    for arm in ("int8", "int8_pruned"):
        sens = arms[arm]["sensitivity"]["sensitivity"]
        assert abs(sens - float_sens) <= tolerance

    # Pruning must show up in the cost model, not just the clock.
    models = report["models"]
    assert models["int8_pruned"]["macs"] < models["int8"]["macs"]
    assert (models["int8_pruned"]["weight_bytes"]
            < models["int8"]["weight_bytes"])

    save_report("quant_scaling", render_quant_report(report))
