"""Micro-benchmarks of the substrates (classic pytest-benchmark usage).

Not a paper table — these keep an eye on the building blocks' throughput:
Butterworth filtering, segmentation, Euler fusion, CNN forward pass
(float32 vs int8), augmentation, and synthetic data generation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import time_warp
from repro.core.architecture import build_lightweight_cnn
from repro.datasets.subjects import make_subjects
from repro.datasets.synthesis.generator import synthesize_recording
from repro.datasets.tasks import TASKS
from repro.quant import QuantizedModel
from repro.signal.filters import lowpass_filter
from repro.signal.orientation import estimate_euler_angles
from repro.signal.segmentation import SegmentationConfig, segment_signal


@pytest.fixture(scope="module")
def imu_signal():
    rng = np.random.default_rng(0)
    return rng.normal(size=(3000, 9))  # 30 s at 100 Hz


@pytest.fixture(scope="module")
def float_model():
    model = build_lightweight_cnn(40, seed=0)
    model.compile("adam", "bce")
    return model


@pytest.fixture(scope="module")
def int8_model(float_model):
    rng = np.random.default_rng(0)
    calib = rng.normal(size=(128, 40, 9)).astype(np.float32)
    return QuantizedModel.convert(float_model, calib)


def test_bench_butterworth_filtfilt(benchmark, imu_signal):
    benchmark(lambda: lowpass_filter(imu_signal, fs=100.0))


def test_bench_segmentation(benchmark, imu_signal):
    cfg = SegmentationConfig(400.0, 0.5, 100.0)
    benchmark(lambda: segment_signal(imu_signal, cfg))


def test_bench_euler_fusion(benchmark, imu_signal):
    accel = imu_signal[:, :3] * 0.05 + [0, 0, 1]
    gyro = imu_signal[:, 3:6] * 10
    benchmark(lambda: estimate_euler_angles(accel, gyro, fs=100.0))


def test_bench_cnn_forward_float32(benchmark, float_model):
    x = np.zeros((64, 40, 9), dtype=np.float32)
    benchmark(lambda: float_model.predict(x))


def test_bench_cnn_forward_int8(benchmark, int8_model):
    x = np.zeros((64, 40, 9), dtype=np.float32)
    benchmark(lambda: int8_model.predict(x))


def test_bench_cnn_train_step(benchmark, float_model):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(64, 40, 9)).astype(np.float32)
    y = rng.integers(0, 2, size=(64, 1)).astype(float)
    benchmark(lambda: float_model.train_on_batch(x, y))


def test_bench_time_warp(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(40, 9))
    benchmark(lambda: time_warp(x, rng))


def test_bench_synthesize_fall_trial(benchmark):
    subject = make_subjects("BM", 1, seed=0)[0]
    counter = iter(range(10**9))

    def _one_trial():
        return synthesize_recording(TASKS[30], subject, trial=next(counter),
                                    duration_scale=0.5, base_seed=1)

    benchmark(_one_trial)
