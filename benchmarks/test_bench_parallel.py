"""Parallel fold execution and cache warm-start benchmark.

Two claims, archived to ``benchmarks/results/parallel_scaling.txt``:

* ``cross_validate(n_jobs=4)`` is **bit-identical** to the serial run —
  the per-task seeding discipline means scheduling cannot leak into
  results — and, on a machine with >= 4 cores, at least 2x faster;
* a cache-warm rerun of ``run_window_sweep`` skips dataset synthesis and
  segmentation entirely (zero ``pipeline/build_*`` spans, zero new cache
  misses), serving both artifacts from the on-disk cache.

On smaller runners the speedup assertion is skipped (forking 4 workers
onto 1 core cannot win) but identity and the archived numbers remain.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import obs
from repro.core.architecture import build_lightweight_cnn
from repro.core.crossval import cross_validate
from repro.experiments import (
    build_experiment_dataset,
    reset_experiment_caches,
    run_window_sweep,
    training_config,
)
from repro.experiments.runners import _segments_for
from repro.obs import get_collector, get_registry
from repro.parallel import last_run_stats

PIPELINE_SPANS = ("pipeline/build_kfall", "pipeline/build_selfcollected",
                  "pipeline/build_segments")

#: Lines accumulated by the tests below; the last test archives them.
_REPORT: list[str] = []


def _fold_fingerprint(results):
    return [
        (r.fold.index, r.epochs_trained, r.metrics,
         r.probabilities.tobytes())
        for r in results
    ]


def test_parallel_crossval_bit_identical_with_speedup(scale):
    segments = _segments_for(build_experiment_dataset(scale), 400.0, 0.5)
    config = training_config(scale)

    runs = {}
    for n_jobs in (1, 4):
        t0 = time.perf_counter()
        results = cross_validate(
            build_lightweight_cnn, segments, k=scale.folds,
            n_val_subjects=scale.n_val_subjects, config=config,
            seed=scale.seed, max_folds=None, n_jobs=n_jobs)
        wall = time.perf_counter() - t0
        runs[n_jobs] = (results, wall, last_run_stats())

    serial, serial_wall, _ = runs[1]
    pooled, pooled_wall, stats = runs[4]
    assert _fold_fingerprint(serial) == _fold_fingerprint(pooled)

    speedup = serial_wall / pooled_wall if pooled_wall > 0 else 0.0
    _REPORT.append(
        f"cross_validate k={scale.folds} ({scale.name} scale, "
        f"{os.cpu_count()} cores): serial={serial_wall:.1f}s "
        f"n_jobs=4={pooled_wall:.1f}s speedup={speedup:.2f}x "
        f"mode={stats['mode']} retried={stats['retried_serial']} "
        f"bit_identical=yes")
    if (os.cpu_count() or 1) >= 4 and stats["retried_serial"] == 0:
        assert speedup >= 2.0, (serial_wall, pooled_wall)


def test_cache_warm_rerun_skips_pipeline(scale, tmp_path_factory,
                                         monkeypatch):
    cache_dir = tmp_path_factory.mktemp("artifact-cache")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.setenv("REPRO_CACHE", "1")
    registry = get_registry()

    def misses():
        return sum(entry["value"] for entry in registry.entries()
                   if entry["name"].startswith("cache/miss/"))

    reset_experiment_caches()
    t0 = time.perf_counter()
    cold = run_window_sweep(scale, windows=(400.0,), overlaps=(0.5,))
    cold_wall = time.perf_counter() - t0
    cold_misses = misses()

    # A fresh process would start with empty memos; simulate that and
    # rerun — everything must now come off disk.
    reset_experiment_caches()
    obs.enable_tracing()
    collector = get_collector()
    collector.clear()
    try:
        t0 = time.perf_counter()
        warm = run_window_sweep(scale, windows=(400.0,), overlaps=(0.5,))
        warm_wall = time.perf_counter() - t0
        spans = [rec.name for rec in collector.records()]
    finally:
        obs.disable_tracing()
        collector.clear()

    for name in PIPELINE_SPANS:
        assert name not in spans, f"warm run rebuilt the pipeline: {name}"
    assert misses() == cold_misses, "warm run missed the cache"
    assert set(warm) == set(cold)
    for cell, metrics in cold.items():
        assert warm[cell] == metrics, cell

    _REPORT.append(
        f"run_window_sweep 1 cell ({scale.name} scale): "
        f"cold={cold_wall:.1f}s warm={warm_wall:.1f}s "
        f"(warm run: 0 pipeline spans, 0 cache misses, "
        f"bit-identical metrics)")
    reset_experiment_caches()


def test_archive_parallel_scaling(save_report):
    assert _REPORT, "scaling/cache tests produced no report lines"
    save_report(
        "parallel_scaling",
        "Parallel execution & artifact cache\n"
        + "-" * 35 + "\n"
        + "\n".join(_REPORT),
    )
