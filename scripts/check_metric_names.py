#!/usr/bin/env python3
"""Lint: metric names must be lowercase, ``/``-separated and bounded.

Two modes:

* **Source mode** (default) — AST-scan every ``.counter(...)`` /
  ``.gauge(...)`` / ``.histogram(...)`` call under ``src/repro/`` and
  check the name argument:

  - a literal name must match ``segment(/segment)*`` where a segment is
    ``[a-z][a-z0-9_]*`` — lowercase, no dashes, no spaces, no leading
    digits;
  - an f-string name may start with ONE leading placeholder (the
    per-instance prefix pattern, e.g. ``f"{prefix}/health"``); its
    constant fragments obey the same charset.  Any other placeholder
    interpolates data into the name — a per-stream/per-layer cardinality
    risk — and must carry an explicit ``# metric-name: dynamic`` pragma
    on the same line, which documents the site as a reviewed, bounded
    namespace (the README documents ``serve/stream/<id>/``);
  - an f-string starting with the literal ``slo/`` prefix (the
    ``slo/<objective>/<counter>`` grammar) may interpolate mid-name
    without a pragma: the objective names are fixed by
    ``repro.obs.SLOConfig``, so the namespace is bounded by
    construction.

* **Exposition mode** (``--exposition FILE``) — parse Prometheus text
  exposition produced by ``repro.obs.render_exposition``: every sample
  must belong to a ``# TYPE``-declared family, family names must be
  ``[a-z][a-z0-9_]*``, histogram buckets must be cumulative and end at
  ``+Inf`` with the ``_count`` value, and no family name may embed a
  stream id (``..._s007_...``) — per-stream series belong in the
  ``stream`` label, not the metric name.

Run directly or via ``make lint`` / ``make check``.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
#: Packages the lint must cover (same guard as check_no_print: a rename
#: must not silently un-lint a package).
EXPECTED_PACKAGES = ("alerts", "core", "datasets", "eval", "experiments",
                     "faults", "fleet", "obs", "parallel", "quant",
                     "serve", "signal")

_METHODS = {"counter", "gauge", "histogram"}
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(/[a-z][a-z0-9_]*)*$")
_FRAGMENT_RE = re.compile(r"^[a-z0-9_/]*$")
_PRAGMA = "# metric-name: dynamic"
#: ``slo/<objective>/<counter>`` interpolates the objective name
#: mid-string; the objectives are enumerated by ``SLOConfig.objectives``
#: so the namespace is bounded without a per-site pragma.
_SLO_PREFIX = "slo/"
#: ``quant/<arm>/<metric>`` interpolates the benchmark arm mid-string;
#: the arms are the fixed float32/int8/int8_pruned trio enumerated by
#: ``repro.quant.bench._ARMS``, so the namespace is bounded.
_QUANT_PREFIX = "quant/"

_FAMILY_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_TYPE_LINE_RE = re.compile(r"^# TYPE (?P<family>\S+) (?P<kind>\S+)$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)
#: A stream-id-shaped chunk inside a metric *name* means per-stream
#: cardinality leaked out of the ``stream`` label.
_ID_IN_NAME_RE = re.compile(r"(^|_)s?\d+(_|$)")


def _check_literal(name: str) -> str | None:
    if not _NAME_RE.match(name):
        return (f"bad metric name {name!r}: want lowercase "
                f"'/'-separated segments matching [a-z][a-z0-9_]*")
    return None


def _check_fstring(node: ast.JoinedStr, line: str) -> str | None:
    has_pragma = _PRAGMA in line
    first = node.values[0] if node.values else None
    if (isinstance(first, ast.Constant)
            and str(first.value).startswith((_SLO_PREFIX, _QUANT_PREFIX))):
        has_pragma = True  # bounded grammars, see _SLO_PREFIX/_QUANT_PREFIX
    for position, part in enumerate(node.values):
        if isinstance(part, ast.Constant):
            if not _FRAGMENT_RE.match(str(part.value)):
                return (f"bad metric name fragment {part.value!r}: "
                        f"want charset [a-z0-9_/]")
        elif position > 0 and not has_pragma:
            return ("dynamic metric name: interpolating data after the "
                    "first segment risks unbounded metric cardinality; "
                    f"add '{_PRAGMA}' if the namespace is documented "
                    "and bounded")
    return None


def find_source_violations() -> list[tuple[pathlib.Path, int, str]]:
    missing = [p for p in EXPECTED_PACKAGES
               if not (SRC / p / "__init__.py").is_file()]
    if missing:
        raise SystemExit(
            f"check_metric_names: expected package(s) missing from "
            f"src/repro: {missing}"
        )
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METHODS
                    and node.args):
                continue
            name_arg = node.args[0]
            line = lines[node.lineno - 1]
            if isinstance(name_arg, ast.Constant):
                problem = (_check_literal(name_arg.value)
                           if isinstance(name_arg.value, str) else None)
            elif isinstance(name_arg, ast.JoinedStr):
                problem = _check_fstring(name_arg, line)
            else:
                # A bare variable: the name was built elsewhere; require
                # the pragma so the site is visibly reviewed.
                problem = (None if _PRAGMA in line else
                           "metric name from a variable; add "
                           f"'{_PRAGMA}' if reviewed")
            if problem:
                violations.append((path, name_arg.lineno, problem))
    return violations


def check_exposition(text: str) -> list[str]:
    """Validate Prometheus text exposition; returns problem strings."""
    problems = []
    types: dict[str, str] = {}
    buckets: dict[str, list[tuple[str, float]]] = {}
    counts: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        type_match = _TYPE_LINE_RE.match(line)
        if type_match:
            family = type_match.group("family")
            if not _FAMILY_RE.match(family):
                problems.append(f"line {lineno}: bad family name {family!r}")
            if _ID_IN_NAME_RE.search(family):
                problems.append(
                    f"line {lineno}: family {family!r} embeds a stream id "
                    f"— use a 'stream' label, not the metric name"
                )
            if family in types:
                problems.append(
                    f"line {lineno}: duplicate # TYPE for {family!r}")
            types[family] = type_match.group("kind")
            continue
        if line.startswith("#"):
            continue
        sample = _SAMPLE_RE.match(line)
        if not sample:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = sample.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base is not None and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            problems.append(
                f"line {lineno}: sample {name!r} has no # TYPE declaration")
            continue
        try:
            value = float(sample.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: bad value in {line!r}")
            continue
        labels = sample.group("labels") or ""
        if name.endswith("_bucket") and types[family] == "histogram":
            le_match = re.search(r'le="([^"]*)"', labels)
            if not le_match:
                problems.append(f"line {lineno}: bucket without le label")
                continue
            series = re.sub(r'le="[^"]*",?', "", labels)
            buckets.setdefault(f"{family}{{{series}}}", []).append(
                (le_match.group(1), value))
        elif name.endswith("_count") and types[family] == "histogram":
            counts[f"{family}{{{labels}}}"] = value
    for series, entries in buckets.items():
        values = [v for _, v in entries]
        if values != sorted(values):
            problems.append(f"{series}: bucket counts not cumulative")
        if entries[-1][0] != "+Inf":
            problems.append(f"{series}: last bucket is not le=\"+Inf\"")
        elif series in counts and entries[-1][1] != counts[series]:
            problems.append(
                f"{series}: +Inf bucket {entries[-1][1]} != _count "
                f"{counts[series]}"
            )
    return problems


def main(argv) -> int:
    if len(argv) >= 2 and argv[1] == "--exposition":
        if len(argv) != 3:
            print("usage: check_metric_names.py --exposition FILE")
            return 2
        text = pathlib.Path(argv[2]).read_text(encoding="utf-8")
        problems = check_exposition(text)
        if problems:
            print(f"check_metric_names: {len(problems)} problem(s) in "
                  f"{argv[2]}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"check_metric_names: OK ({argv[2]} parses clean)")
        return 0
    violations = find_source_violations()
    if violations:
        print(f"check_metric_names: {len(violations)} violation(s):")
        for path, lineno, problem in violations:
            rel = path.relative_to(REPO_ROOT)
            print(f"  {rel}:{lineno}: {problem}")
        return 1
    print("check_metric_names: OK (no violations under src/repro)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
