#!/usr/bin/env python3
"""Lint: library code must log, not print.

Fails (exit 1) if a ``print(`` call appears anywhere under ``src/repro/``
outside the allowed user-facing modules (``cli.py``, ``eval/reports.py``).
Library diagnostics belong on ``repro.obs.get_logger(...)`` so the
``--verbose`` CLI flag — not stray stdout — controls them.

Run directly or via ``make lint``.
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
ALLOWED = {SRC / "cli.py", SRC / "eval" / "reports.py"}
#: Packages the lint must cover. A rename/move that silently drops one of
#: these from the sweep fails loudly instead of un-linting the package.
EXPECTED_PACKAGES = ("alerts", "core", "datasets", "eval", "experiments",
                     "faults", "fleet", "obs", "parallel", "quant",
                     "serve", "signal")


def find_violations() -> list[tuple[pathlib.Path, int, str]]:
    """Real ``print(...)`` call sites (AST-based, so docstrings and
    comments mentioning print don't count)."""
    missing = [p for p in EXPECTED_PACKAGES
               if not (SRC / p / "__init__.py").is_file()]
    if missing:
        raise SystemExit(
            f"check_no_print: expected package(s) missing from src/repro: "
            f"{missing}"
        )
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                violations.append(
                    (path, node.lineno, lines[node.lineno - 1].strip())
                )
    return violations


def main() -> int:
    violations = find_violations()
    for path, lineno, line in violations:
        rel = path.relative_to(REPO_ROOT)
        print(f"{rel}:{lineno}: print() in library code: {line}")
    if violations:
        print(f"\n{len(violations)} violation(s); use repro.obs.get_logger() "
              "instead (cli.py and eval/reports.py are exempt)")
        return 1
    print("check_no_print: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
