#!/usr/bin/env python3
"""Refresh the measured tables in EXPERIMENTS.md from benchmarks/results/.

Each ``<!-- NAME -->`` placeholder (or a previously inserted block fenced
by ``<!-- NAME --> ... <!-- /NAME -->``) is replaced with the matching
archived report, so the document can be regenerated after every benchmark
run:

    pytest benchmarks/ --benchmark-only
    python scripts/update_experiments_md.py
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
TARGET = ROOT / "EXPERIMENTS.md"

#: placeholder -> results file.
MAPPING = {
    "TABLE3": "table3_models.txt",
    "TABLE4": "table4_events.txt",
    "EDGE": "edge_deployment.txt",
    "TABLE1": "table1_thresholds.txt",
    "SWEEP": "window_sweep.txt",
    "ABLATIONS": "ablations.txt",
    "RELATED": "related_work.txt",
    "CROSS": "cross_dataset.txt",
    "FIGURE1": "figure1_phases.txt",
    "FIGURE2": "figure2_pipeline.txt",
    "DISTILL": "distillation.txt",
    "PARALLEL": "parallel_scaling.txt",
    "ALERTS": "alert_pipeline.txt",
    "SERVE": "serve_scaling.txt",
    "FLEET": "fleet_scaling.txt",
    "SLO": "slo_report.txt",
    "QUANT": "quant_scaling.txt",
}


def main() -> int:
    text = TARGET.read_text(encoding="utf-8")
    missing = []
    for key, filename in MAPPING.items():
        path = RESULTS / filename
        if not path.exists():
            missing.append(filename)
            continue
        block = (f"<!-- {key} -->\n```\n"
                 + path.read_text(encoding="utf-8").strip()
                 + f"\n```\n<!-- /{key} -->")
        pattern = re.compile(
            rf"<!-- {key} -->(?:.*?<!-- /{key} -->)?", re.DOTALL
        )
        if not pattern.search(text):
            print(f"warning: no placeholder for {key}", file=sys.stderr)
            continue
        text = pattern.sub(lambda _m: block, text, count=1)
    TARGET.write_text(text, encoding="utf-8")
    if missing:
        print("missing results (bench not run?): " + ", ".join(missing),
              file=sys.stderr)
    print(f"updated {TARGET}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
