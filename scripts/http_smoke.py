#!/usr/bin/env python3
"""Smoke test: the observability HTTP endpoint end to end.

Runs a small synthetic alerting fleet through the serve engine, exposes
it via :class:`repro.alerts.ObservabilityServer` on an **ephemeral**
port (so the check never collides with a real deployment or a parallel
CI job), then asserts:

* ``/metrics`` answers 200 and its body passes the exposition linter
  from ``scripts/check_metric_names.py`` (per-stage latency histograms
  included);
* ``/healthz`` answers 200 with ``status: ok``, a non-negative
  ``uptime_s`` and the engine's round counters (the liveness signal);
* ``/alerts`` answers 200 and returns the alerts the workload raised;
* ``/slo`` answers 200 with the error-budget objectives and the
  per-stage budget attribution;
* ``/dashboard`` answers 200 and renders the alert pane;
* an unknown route answers 404 and a bad query answers 400 — neither
  disturbs the routes above.

Run directly or via ``make http-smoke`` (part of ``make check``).
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from check_metric_names import check_exposition  # noqa: E402

from repro.alerts import (  # noqa: E402
    AlertConfig,
    EscalationConfig,
    EventStoreConfig,
    ObservabilityServer,
)
from repro.experiments import MagnitudeProbeModel  # noqa: E402
from repro.serve import TailConfig, render_dashboard, run_tail  # noqa: E402


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def main() -> int:
    store_dir = tempfile.mkdtemp(prefix="repro-http-smoke-")
    config = TailConfig(
        n_streams=4, duration_s=4.0, seed=11,
        alerts=AlertConfig(
            escalation=EscalationConfig(confirm_window_s=1.5,
                                        confirm_detections=1,
                                        auto_resolve_s=2.0),
            dedup_horizon_s=4.0,
            store=EventStoreConfig(root=store_dir),
        ),
    )
    result = run_tail(MagnitudeProbeModel(), config)
    engine, sampler = result["engine"], result["sampler"]

    def _extra_metrics():
        extra = {"serve/fleet/window_latency_ms": engine.fleet_latency()}
        stages = engine.fleet_stages()
        if stages is not None:
            for stage, hist in stages.histograms.items():
                extra[f"serve/stage/{stage}/latency_ms"] = hist
        return extra

    server = ObservabilityServer(
        registry=result["registry"],
        extra_metrics=_extra_metrics,
        manager=engine.alerts,
        dashboard=lambda: render_dashboard(engine, sampler),
        health=lambda: {"rounds": engine.rounds,
                        "last_round_t": engine.last_round_t},
        slo=engine.slo_report,
        port=0,
    )
    port = server.start()
    base = f"http://127.0.0.1:{port}"
    failures = []

    status, metrics_body = _get(base + "/metrics")
    if status != 200:
        failures.append(f"/metrics returned {status}")
    problems = check_exposition(metrics_body)
    failures += [f"/metrics exposition: {p}" for p in problems]
    if "repro_alerts_raised" not in metrics_body:
        failures.append("/metrics body lacks repro_alerts_raised")

    status, body = _get(base + "/healthz")
    health = json.loads(body) if status == 200 else {}
    if status != 200 or health.get("status") != "ok":
        failures.append(f"/healthz returned {status}: {body[:100]}")
    if not isinstance(health.get("uptime_s"), float) or health["uptime_s"] < 0:
        failures.append(f"/healthz lacks non-negative uptime_s: {body[:100]}")
    if health.get("rounds", 0) < 1 or health.get("last_round_t") is None:
        failures.append(f"/healthz shows no serving rounds: {body[:100]}")

    status, body = _get(base + "/alerts?limit=5")
    alerts = json.loads(body) if status == 200 else {}
    if status != 200:
        failures.append(f"/alerts returned {status}")
    elif not isinstance(alerts.get("active"), list):
        failures.append(f"/alerts body lacks active list: {body[:100]}")

    status, body = _get(base + "/slo")
    slo = json.loads(body) if status == 200 else {}
    if status != 200:
        failures.append(f"/slo returned {status}")
    else:
        objectives = slo.get("objectives", {})
        if "window_latency_p99" not in objectives:
            failures.append(f"/slo lacks window_latency_p99: {body[:120]}")
        attribution = slo.get("attribution") or []
        share = sum(row["share_of_e2e"] for row in attribution)
        if attribution and not 0.99 < share < 1.01:
            failures.append(
                f"/slo attribution shares sum to {share}, want ~1")

    status, body = _get(base + "/dashboard")
    if status != 200 or "alerts" not in body:
        failures.append(f"/dashboard returned {status} without alert pane")

    status, _ = _get(base + "/nope")
    if status != 404:
        failures.append(f"unknown route returned {status}, want 404")
    status, _ = _get(base + "/alerts?bogus=1")
    if status != 400:
        failures.append(f"bad /alerts query returned {status}, want 400")

    # The smoke's own errors would hide behind 500s; surface them.
    if server.errors:
        failures.append(f"server logged {server.errors} handler error(s)")
    server.stop()

    for failure in failures:
        print(f"http_smoke: FAIL: {failure}")
    if failures:
        return 1
    print(f"http_smoke: OK ({server.requests} requests, "
          f"{len(metrics_body.splitlines())} exposition lines, "
          f"{alerts['count']} stored alert event(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
